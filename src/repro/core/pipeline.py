"""The end-to-end recovery-policy learner.

Typical use::

    from repro.core import RecoveryPolicyLearner
    from repro.evaluation import time_ordered_split

    train, test = time_ordered_split(log.to_processes(), 0.4)
    learner = RecoveryPolicyLearner().fit(train)
    trained = learner.trained_policy()
    hybrid = learner.hybrid_policy()
    result = learner.make_evaluator(test).evaluate(trained)
    print(result.overall_relative_cost)   # ~0.89 on the paper's data

The learner consumes only the recovery log (processes), never ground
truth about faults — the same information barrier the paper's offline
components face.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.actions.action import ActionCatalog, default_catalog
from repro.core.config import PipelineConfig
from repro.errors import NotTrainedError, TrainingError
from repro.errortypes.registry import ErrorTypeRegistry
from repro.evaluation.evaluator import PolicyEvaluator
from repro.learning.checkpoint import CheckpointStore, training_fingerprint
from repro.learning.extraction import merge_rules
from repro.learning.parallel import ParallelTrainingEngine, TypeOutcome
from repro.learning.qlearning import (
    TrainingResult,
    TypeTrainingResult,
)
from repro.learning.telemetry import TrainingTelemetry
from repro.mining.noise import NoiseFilterResult, filter_noise
from repro.policies.base import Policy
from repro.policies.hybrid import HybridPolicy
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.recoverylog.log import RecoveryLog
from repro.recoverylog.process import RecoveryProcess
from repro.simplatform.platform import SimulationPlatform

__all__ = ["RecoveryPolicyLearner"]

ProcessSource = Union[RecoveryLog, Sequence[RecoveryProcess]]


class RecoveryPolicyLearner:
    """Learn recovery policies from a recovery log (Figure 1, lower half).

    Parameters
    ----------
    catalog:
        Repair-action catalog; defaults to the paper's four actions.
    config:
        Pipeline configuration (including ``n_workers`` /
        ``checkpoint_dir`` / ``resume`` for the parallel engine).
    telemetry:
        Optional :class:`~repro.learning.telemetry.TrainingTelemetry`
        observer for per-type training progress.

    Attributes (set by :meth:`fit`)
    -------------------------------
    noise_result_:
        The mining-based noise filter outcome.
    registry_:
        Error types actually trained (top-k by frequency).
    training_result_:
        Per-type Q-learning outcomes.
    outcomes_:
        Per-type engine outcomes (rules, wall-clock, checkpoint
        provenance).
    rules_:
        The merged state-action rule table.
    """

    def __init__(
        self,
        catalog: Optional[ActionCatalog] = None,
        config: Optional[PipelineConfig] = None,
        baseline: Optional[Policy] = None,
        telemetry: Optional[TrainingTelemetry] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else default_catalog()
        self.config = config if config is not None else PipelineConfig()
        # The incumbent policy: the selection tree's conservative margin
        # compares candidates against it, and the hybrid policy falls
        # back to it.  Defaults to the cheapest-first ladder.
        self.baseline = (
            baseline
            if baseline is not None
            else UserDefinedPolicy(self.catalog)
        )
        self.telemetry = telemetry
        self.noise_result_: Optional[NoiseFilterResult] = None
        self.registry_: Optional[ErrorTypeRegistry] = None
        self.training_result_: Optional[TrainingResult] = None
        self.outcomes_: Optional[Dict[str, TypeOutcome]] = None
        self.rules_ = None
        self._platform: Optional[SimulationPlatform] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _as_processes(source: ProcessSource) -> Tuple[RecoveryProcess, ...]:
        if isinstance(source, RecoveryLog):
            return source.to_processes()
        return tuple(source)

    def _make_checkpoint_store(self) -> Optional[CheckpointStore]:
        """The configured checkpoint store, fingerprinted to this run.

        The fingerprint covers every knob that shapes a type's course —
        hyper-parameters, extraction mode, catalog, action cap and
        baseline — so checkpoints from a differently configured run are
        invalidated rather than silently mixed in.  The Q-table
        ``backend`` is deliberately excluded: both backends produce
        bit-identical courses, so a run checkpointed under one backend
        resumes under the other without retraining.
        """
        if not self.config.checkpoint_dir:
            return None
        qlearning = asdict(self.config.qlearning)
        qlearning.pop("backend", None)
        fingerprint = training_fingerprint(
            {
                "qlearning": qlearning,
                "tree": (
                    asdict(self.config.tree)
                    if self.config.use_selection_tree
                    else None
                ),
                "use_selection_tree": self.config.use_selection_tree,
                "max_actions": self.config.max_actions,
                "actions": list(self.catalog.names()),
                "baseline": self.baseline.name,
            }
        )
        return CheckpointStore(
            self.config.checkpoint_dir,
            fingerprint=fingerprint,
            alpha_floor=self.config.qlearning.alpha_floor,
            backend=self.config.qlearning.backend,
        )

    def fit(self, source: ProcessSource) -> "RecoveryPolicyLearner":
        """Run mining, type induction and per-type Q-learning.

        ``source`` is a recovery log or its segmented processes — the
        *training* portion of a time-ordered split.  Training fans out
        over ``config.n_workers`` processes; per-type RNG derivation
        makes the fitted policies identical for every worker count.
        """
        processes = self._as_processes(source)
        if not processes:
            raise TrainingError("cannot fit on an empty recovery log")

        self.noise_result_ = filter_noise(processes, self.config.minp)
        clean = self.noise_result_.clean
        if not clean:
            raise TrainingError("noise filtering removed every process")

        full_registry = ErrorTypeRegistry.from_processes(clean)
        self.registry_ = full_registry.top(self.config.top_k_types)
        groups = self.registry_.partition(clean)

        trainable: Dict[str, Sequence[RecoveryProcess]] = {}
        for info in self.registry_:
            type_processes = groups[info.name]
            if len(type_processes) < self.config.min_processes_per_type:
                continue
            trainable[info.name] = type_processes
        if not trainable:
            raise TrainingError(
                "no error type had enough training processes "
                f"(min_processes_per_type={self.config.min_processes_per_type})"
            )

        engine = ParallelTrainingEngine(
            clean,
            self.catalog,
            qlearning=self.config.qlearning,
            tree=(
                self.config.tree if self.config.use_selection_tree else None
            ),
            baseline=(
                self.baseline if self.config.use_selection_tree else None
            ),
            max_actions=self.config.max_actions,
            n_workers=self.config.n_workers,
            checkpoint=self._make_checkpoint_store(),
            resume=self.config.resume,
            telemetry=self.telemetry,
        )
        self._platform = engine.platform
        outcomes = engine.train(trainable)

        per_type: Dict[str, TypeTrainingResult] = {
            error_type: outcome.training
            for error_type, outcome in outcomes.items()
        }
        self.outcomes_ = outcomes
        self.training_result_ = TrainingResult(per_type=per_type)
        self.rules_ = merge_rules(
            *(outcome.rules for outcome in outcomes.values())
        )
        return self

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.rules_ is None:
            raise NotTrainedError(
                "call fit() before requesting policies or evaluators"
            )

    def trained_policy(self, label: str = "trained") -> TrainedPolicy:
        """The pure RL-trained policy (raises on unhandled states)."""
        self._require_fitted()
        return TrainedPolicy(self.rules_, label=label)

    def hybrid_policy(
        self, fallback: Optional[Policy] = None
    ) -> HybridPolicy:
        """The Section 3.4 hybrid: trained policy with automatic fallback.

        ``fallback`` defaults to the learner's baseline policy (the
        user-defined cheapest-first ladder unless overridden).
        """
        self._require_fitted()
        if fallback is None:
            fallback = self.baseline
        return HybridPolicy(self.trained_policy(), fallback)

    def make_evaluator(
        self,
        test_source: ProcessSource,
        *,
        filter_test_noise: bool = True,
    ) -> PolicyEvaluator:
        """An evaluator over held-out processes, restricted to the
        trained error types.

        ``filter_test_noise`` applies the same mining-based noise filter
        to the test processes (the paper ignores noisy cases for a
        precise evaluation).
        """
        self._require_fitted()
        processes = self._as_processes(test_source)
        if filter_test_noise:
            processes = filter_noise(processes, self.config.minp).clean
        if self.registry_ is None:
            # _require_fitted guarantees rules_; the registry is built in
            # the same fit step, so a missing one means a partially
            # constructed learner (e.g. hand-assigned rules_), which must
            # fail loudly even under ``python -O``.
            raise NotTrainedError(
                "learner has rules but no error-type registry; call fit() "
                "before make_evaluator()"
            )
        return PolicyEvaluator(
            processes,
            self.catalog,
            error_types=self.registry_.names,
            max_actions=self.config.max_actions,
        )
