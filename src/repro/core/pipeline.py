"""The end-to-end recovery-policy learner.

Typical use::

    from repro.core import RecoveryPolicyLearner
    from repro.evaluation import time_ordered_split

    train, test = time_ordered_split(log.to_processes(), 0.4)
    learner = RecoveryPolicyLearner().fit(train)
    trained = learner.trained_policy()
    hybrid = learner.hybrid_policy()
    result = learner.make_evaluator(test).evaluate(trained)
    print(result.overall_relative_cost)   # ~0.89 on the paper's data

The learner consumes only the recovery log (processes), never ground
truth about faults — the same information barrier the paper's offline
components face.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.actions.action import ActionCatalog, default_catalog
from repro.core.config import PipelineConfig
from repro.errors import NotTrainedError, TrainingError
from repro.errortypes.registry import ErrorTypeRegistry
from repro.evaluation.evaluator import PolicyEvaluator
from repro.learning.extraction import extract_greedy_rules, merge_rules
from repro.learning.qlearning import (
    QLearningTrainer,
    TrainingResult,
    TypeTrainingResult,
)
from repro.learning.selection_tree import SelectionTreeExtractor
from repro.mining.noise import NoiseFilterResult, filter_noise
from repro.policies.base import Policy
from repro.policies.hybrid import HybridPolicy
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.recoverylog.log import RecoveryLog
from repro.recoverylog.process import RecoveryProcess
from repro.simplatform.platform import SimulationPlatform

__all__ = ["RecoveryPolicyLearner"]

ProcessSource = Union[RecoveryLog, Sequence[RecoveryProcess]]


class RecoveryPolicyLearner:
    """Learn recovery policies from a recovery log (Figure 1, lower half).

    Parameters
    ----------
    catalog:
        Repair-action catalog; defaults to the paper's four actions.
    config:
        Pipeline configuration.

    Attributes (set by :meth:`fit`)
    -------------------------------
    noise_result_:
        The mining-based noise filter outcome.
    registry_:
        Error types actually trained (top-k by frequency).
    training_result_:
        Per-type Q-learning outcomes.
    rules_:
        The merged state-action rule table.
    """

    def __init__(
        self,
        catalog: Optional[ActionCatalog] = None,
        config: Optional[PipelineConfig] = None,
        baseline: Optional[Policy] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else default_catalog()
        self.config = config if config is not None else PipelineConfig()
        # The incumbent policy: the selection tree's conservative margin
        # compares candidates against it, and the hybrid policy falls
        # back to it.  Defaults to the cheapest-first ladder.
        self.baseline = (
            baseline
            if baseline is not None
            else UserDefinedPolicy(self.catalog)
        )
        self.noise_result_: Optional[NoiseFilterResult] = None
        self.registry_: Optional[ErrorTypeRegistry] = None
        self.training_result_: Optional[TrainingResult] = None
        self.rules_ = None
        self._platform: Optional[SimulationPlatform] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _as_processes(source: ProcessSource) -> Tuple[RecoveryProcess, ...]:
        if isinstance(source, RecoveryLog):
            return source.to_processes()
        return tuple(source)

    def fit(self, source: ProcessSource) -> "RecoveryPolicyLearner":
        """Run mining, type induction and per-type Q-learning.

        ``source`` is a recovery log or its segmented processes — the
        *training* portion of a time-ordered split.
        """
        processes = self._as_processes(source)
        if not processes:
            raise TrainingError("cannot fit on an empty recovery log")

        self.noise_result_ = filter_noise(processes, self.config.minp)
        clean = self.noise_result_.clean
        if not clean:
            raise TrainingError("noise filtering removed every process")

        full_registry = ErrorTypeRegistry.from_processes(clean)
        self.registry_ = full_registry.top(self.config.top_k_types)
        groups = self.registry_.partition(clean)

        self._platform = SimulationPlatform(
            clean,
            self.catalog,
            max_actions=self.config.max_actions,
        )
        trainer = QLearningTrainer(self._platform, self.config.qlearning)

        per_type: Dict[str, TypeTrainingResult] = {}
        rule_tables = []
        if self.config.use_selection_tree:
            extractor = SelectionTreeExtractor(self._platform, self.config.tree)
            for info in self.registry_:
                type_processes = groups[info.name]
                if len(type_processes) < self.config.min_processes_per_type:
                    continue
                outcome = extractor.train_type(
                    trainer, info.name, type_processes, baseline=self.baseline
                )
                per_type[info.name] = outcome.training
                rule_tables.append(outcome.rules)
        else:
            for info in self.registry_:
                type_processes = groups[info.name]
                if len(type_processes) < self.config.min_processes_per_type:
                    continue
                result = trainer.train_type(info.name, type_processes)
                per_type[info.name] = result
                rule_tables.append(extract_greedy_rules(result.qtable))

        if not per_type:
            raise TrainingError(
                "no error type had enough training processes "
                f"(min_processes_per_type={self.config.min_processes_per_type})"
            )
        self.training_result_ = TrainingResult(per_type=per_type)
        self.rules_ = merge_rules(*rule_tables)
        return self

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.rules_ is None:
            raise NotTrainedError(
                "call fit() before requesting policies or evaluators"
            )

    def trained_policy(self, label: str = "trained") -> TrainedPolicy:
        """The pure RL-trained policy (raises on unhandled states)."""
        self._require_fitted()
        return TrainedPolicy(self.rules_, label=label)

    def hybrid_policy(
        self, fallback: Optional[Policy] = None
    ) -> HybridPolicy:
        """The Section 3.4 hybrid: trained policy with automatic fallback.

        ``fallback`` defaults to the learner's baseline policy (the
        user-defined cheapest-first ladder unless overridden).
        """
        self._require_fitted()
        if fallback is None:
            fallback = self.baseline
        return HybridPolicy(self.trained_policy(), fallback)

    def make_evaluator(
        self,
        test_source: ProcessSource,
        *,
        filter_test_noise: bool = True,
    ) -> PolicyEvaluator:
        """An evaluator over held-out processes, restricted to the
        trained error types.

        ``filter_test_noise`` applies the same mining-based noise filter
        to the test processes (the paper ignores noisy cases for a
        precise evaluation).
        """
        self._require_fitted()
        processes = self._as_processes(test_source)
        if filter_test_noise:
            processes = filter_noise(processes, self.config.minp).clean
        assert self.registry_ is not None
        return PolicyEvaluator(
            processes,
            self.catalog,
            error_types=self.registry_.names,
            max_actions=self.config.max_actions,
        )
