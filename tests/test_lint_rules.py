"""Golden fixture tests: each rule R1-R6 fires on its violating snippet
at exactly the expected lines and stays silent on the clean twin."""

from pathlib import Path

import pytest

from repro.analysis import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


def lines_for(report, rule):
    return sorted(
        finding.line for finding in report.findings if finding.rule == rule
    )


def lint_fixture(name, **kwargs):
    return run_lint([FIXTURES / name], root=FIXTURES, **kwargs)


class TestR1IdKeyedCache:
    def test_bad_fixture_lines(self):
        report = lint_fixture("r1_bad.py")
        assert lines_for(report, "R1") == [8, 17, 22]
        assert all(finding.rule == "R1" for finding in report.findings)

    def test_clean_fixture(self):
        assert lint_fixture("r1_good.py").clean

    def test_messages_explain_address_reuse(self):
        finding = lint_fixture("r1_bad.py").findings[0]
        assert "recycled" in finding.message
        assert "identity" in finding.suggestion


class TestR2UnseededRandomness:
    def test_bad_fixture_lines(self):
        report = lint_fixture("r2_bad.py")
        assert lines_for(report, "R2") == [3, 4, 11, 15]

    def test_clean_fixture(self):
        assert lint_fixture("r2_good.py").clean


class TestR3WallClock:
    def test_bad_fixture_lines(self):
        report = lint_fixture("r3_bad.py")
        assert lines_for(report, "R3") == [8, 9, 10, 14, 16]

    def test_clean_fixture(self):
        assert lint_fixture("r3_good.py").clean

    def test_perf_counter_allowed_in_telemetry_modules(self):
        assert lint_fixture("telemetry.py").clean

    def test_allowlist_is_scoped_not_global(self):
        # The same calls outside an allowlisted module path do fire.
        report = lint_fixture("r3_bad.py", rules=["R3"])
        assert any(
            "perf_counter" in finding.message
            for finding in report.findings
        )


class TestR4UnorderedSetIteration:
    def test_bad_fixture_lines(self):
        report = lint_fixture("r4_bad.py")
        assert lines_for(report, "R4") == [5, 7, 8, 9]

    def test_clean_fixture(self):
        assert lint_fixture("r4_good.py").clean


class TestR5PickleUnsafeWorkers:
    def test_bad_fixture_lines(self):
        report = lint_fixture("r5_bad.py")
        assert lines_for(report, "R5") == [11, 13, 16, 16, 17]

    def test_clean_fixture(self):
        assert lint_fixture("r5_good.py").clean

    def test_lambda_and_generator_named_in_messages(self):
        messages = "\n".join(
            finding.message for finding in lint_fixture("r5_bad.py").findings
        )
        assert "lambda" in messages
        assert "generator expression" in messages
        assert "train_one" in messages


class TestR6FloatEquality:
    def test_bad_fixture_lines(self):
        report = lint_fixture("r6_bad.py")
        assert lines_for(report, "R6") == [5, 7, 11]

    def test_clean_fixture_including_infinity_sentinel(self):
        assert lint_fixture("r6_good.py").clean


class TestPreFixCopies:
    """The exact PR 1-era memo code must fail lint (acceptance gate)."""

    @pytest.mark.parametrize(
        "name", ["prefix_bundle.py", "prefix_figures.py"]
    )
    def test_prefix_copy_has_r1_finding(self, name):
        report = lint_fixture(name)
        assert not report.clean
        assert {finding.rule for finding in report.findings} == {"R1"}

    def test_rule_filter_leaves_prefix_copy_clean_without_r1(self):
        report = lint_fixture("prefix_bundle.py", rules=["R2", "R3"])
        assert report.clean


class TestFleetArrayFixtures:
    """Numpy-heavy R1/R4 twins shaped like the fleet engine's hot paths."""

    def test_bad_fixture_lines(self):
        report = lint_fixture("fleet_arrays_bad.py", rules=["R1", "R4"])
        assert lines_for(report, "R1") == [16]
        assert lines_for(report, "R4") == [24, 30]

    def test_clean_fixture(self):
        assert lint_fixture("fleet_arrays_good.py").clean
