"""Tests for evaluation metrics, evaluator and reports."""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.errors import EvaluationError
from repro.evaluation.evaluator import PolicyEvaluator
from repro.evaluation.metrics import EvaluationResult, TypeEvaluation
from repro.evaluation.report import (
    render_coverage,
    render_relative_costs,
    render_totals,
)
from repro.learning.telemetry import EpisodeRecorder
from repro.policies import (
    FixedSequencePolicy,
    TrainedPolicy,
    UserDefinedPolicy,
)

CATALOG = default_catalog()


def hard_test_processes():
    return ladder_processes(
        "error:Hard",
        [(["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 10)],
        realistic_durations=True,
    )


class TestTypeEvaluation:
    def test_coverage(self):
        evaluation = TypeEvaluation("t", 10, 9, 100.0, 200.0, 250.0)
        assert evaluation.coverage == pytest.approx(0.9)

    def test_relative_cost(self):
        evaluation = TypeEvaluation("t", 10, 10, 100.0, 200.0, 200.0)
        assert evaluation.relative_cost == pytest.approx(0.5)

    def test_zero_denominators(self):
        evaluation = TypeEvaluation("t", 0, 0, 0.0, 0.0, 0.0)
        assert evaluation.coverage == 1.0
        assert evaluation.relative_cost == 1.0


class TestEvaluationResult:
    def _result(self):
        return EvaluationResult(
            policy_name="p",
            per_type={
                "a": TypeEvaluation("a", 10, 10, 80.0, 100.0, 100.0),
                "b": TypeEvaluation("b", 10, 5, 30.0, 50.0, 120.0),
            },
            train_fraction=0.4,
        )

    def test_totals(self):
        result = self._result()
        assert result.total_estimated_cost == pytest.approx(110.0)
        assert result.total_real_cost_handled == pytest.approx(150.0)
        assert result.total_real_cost == pytest.approx(220.0)

    def test_overall_relative_cost(self):
        assert self._result().overall_relative_cost == pytest.approx(
            110.0 / 150.0
        )

    def test_overall_coverage(self):
        assert self._result().overall_coverage == pytest.approx(0.75)

    def test_unhandled_types(self):
        assert self._result().unhandled_types() == ("b",)

    def test_series_accessors(self):
        result = self._result()
        assert result.relative_costs()["a"] == pytest.approx(0.8)
        assert result.coverages()["b"] == pytest.approx(0.5)


class TestPolicyEvaluator:
    def test_user_policy_scores_exactly_one(self):
        processes = hard_test_processes()
        evaluator = PolicyEvaluator(processes, CATALOG)
        result = evaluator.evaluate(UserDefinedPolicy(CATALOG))
        assert result.overall_relative_cost == pytest.approx(1.0)
        assert result.overall_coverage == 1.0

    def test_jump_policy_scores_below_one(self):
        processes = hard_test_processes()
        evaluator = PolicyEvaluator(processes, CATALOG)
        jump = FixedSequencePolicy(["REIMAGE", "RMA"], CATALOG)
        result = evaluator.evaluate(jump)
        assert result.overall_relative_cost < 0.75

    def test_unhandled_processes_excluded_from_totals(self):
        processes = hard_test_processes()
        evaluator = PolicyEvaluator(processes, CATALOG)
        empty = TrainedPolicy({}, label="empty")
        result = evaluator.evaluate(empty)
        assert result.overall_coverage == 0.0
        assert result.total_estimated_cost == 0.0
        assert result.total_real_cost > 0

    def test_type_restriction(self):
        processes = hard_test_processes() + ladder_processes(
            "error:Other", [(["TRYNOP"], 5)], machine_prefix="n"
        )
        evaluator = PolicyEvaluator(
            processes, CATALOG, error_types=["error:Hard"]
        )
        result = evaluator.evaluate(UserDefinedPolicy(CATALOG))
        assert set(result.per_type) == {"error:Hard"}

    def test_requested_type_absent_from_test_skipped(self):
        processes = hard_test_processes()
        evaluator = PolicyEvaluator(
            processes, CATALOG, error_types=["error:Hard", "error:Ghost"]
        )
        assert evaluator.error_types == ("error:Hard",)

    def test_train_fraction_recorded(self):
        processes = hard_test_processes()
        evaluator = PolicyEvaluator(processes, CATALOG)
        result = evaluator.evaluate(
            UserDefinedPolicy(CATALOG), train_fraction=0.6
        )
        assert result.train_fraction == 0.6

    def test_empty_test_set_rejected(self):
        with pytest.raises(EvaluationError):
            PolicyEvaluator([], CATALOG)

    def test_out_of_scope_processes_counted_as_skipped(self):
        processes = hard_test_processes() + ladder_processes(
            "error:Other", [(["TRYNOP"], 5)], machine_prefix="n"
        )
        evaluator = PolicyEvaluator(
            processes, CATALOG, error_types=["error:Hard"]
        )
        result = evaluator.evaluate(UserDefinedPolicy(CATALOG))
        assert result.skipped == 5
        unrestricted = PolicyEvaluator(processes, CATALOG)
        assert unrestricted.evaluate(UserDefinedPolicy(CATALOG)).skipped == 0

    def test_telemetry_records_only_in_scope_episodes(self):
        processes = hard_test_processes() + ladder_processes(
            "error:Other", [(["TRYNOP"], 5)], machine_prefix="n"
        )
        evaluator = PolicyEvaluator(
            processes, CATALOG, error_types=["error:Hard"]
        )
        recorder = EpisodeRecorder()
        evaluator.evaluate(UserDefinedPolicy(CATALOG), telemetry=recorder)
        assert len(recorder) == 10
        assert recorder.episode_counts() == {"evaluation": 10}
        assert {t.error_type for t in recorder.traces} == {"error:Hard"}


class TestReports:
    def _results(self):
        processes = hard_test_processes()
        evaluator = PolicyEvaluator(processes, CATALOG)
        user = evaluator.evaluate(UserDefinedPolicy(CATALOG), train_fraction=0.2)
        jump = evaluator.evaluate(
            FixedSequencePolicy(["REIMAGE", "RMA"], CATALOG),
            train_fraction=0.2,
        )
        return user, jump

    def test_render_relative_costs(self):
        user, jump = self._results()
        text = render_relative_costs([user, jump], {"error:Hard": 1})
        assert "rank" in text
        assert "1" in text

    def test_render_totals(self):
        user, jump = self._results()
        text = render_totals([(user, jump)])
        assert "user-defined" in text
        assert "0.2" in text

    def test_render_coverage(self):
        user, _jump = self._results()
        text = render_coverage([user], {"error:Hard": 1})
        assert "coverage" in text.lower()
