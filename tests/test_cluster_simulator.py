"""Integration tests of the cluster simulator."""

import pytest

from repro.actions import default_catalog
from repro.cluster.cluster import ClusterConfig, ClusterSimulator
from repro.cluster.faults import FaultCatalog, FaultType
from repro.errors import ConfigurationError
from repro.policies import AlwaysStrongestPolicy, UserDefinedPolicy
from repro.util.rng import RngStreams


def tiny_config(**overrides):
    defaults = dict(
        machine_count=10,
        duration=30 * 86_400.0,
        mean_time_between_failures=3 * 86_400.0,
        noise_probability=0.0,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def simple_faults():
    return FaultCatalog(
        [
            FaultType(
                name="transient",
                primary_symptom="error:Transient",
                cure_probabilities={"TRYNOP": 0.7, "REBOOT": 0.95},
                weight=3.0,
            ),
            FaultType(
                name="hard",
                primary_symptom="error:Hard",
                secondary_symptoms=("warn:Side",),
                cure_probabilities={"REIMAGE": 0.95},
                weight=1.0,
            ),
        ]
    )


def run_simulation(policy=None, config=None, seed=5):
    catalog = default_catalog()
    simulator = ClusterSimulator(
        config=config or tiny_config(),
        faults=simple_faults(),
        policy=policy or UserDefinedPolicy(catalog),
        actions=catalog,
        streams=RngStreams(seed),
    )
    return simulator, simulator.run()


class TestSimulatorOutput:
    def test_log_segments_into_processes(self):
        _sim, log = run_simulation()
        processes = log.to_processes()
        assert len(processes) > 10
        for process in processes:
            assert process.entries[0].is_symptom
            assert process.entries[-1].is_success

    def test_error_types_are_primary_symptoms(self):
        _sim, log = run_simulation()
        types = {p.error_type for p in log.to_processes()}
        assert types <= {"error:Transient", "error:Hard"}

    def test_ladder_sequences_are_nondecreasing_strength(self):
        catalog = default_catalog()
        _sim, log = run_simulation()
        for process in log.to_processes():
            strengths = [catalog[a].strength for a in process.actions]
            assert strengths == sorted(strengths)

    def test_hard_faults_need_reimage(self):
        _sim, log = run_simulation()
        hard = [
            p for p in log.to_processes() if p.error_type == "error:Hard"
        ]
        assert hard
        reimaged = sum(
            1 for p in hard if p.final_action in ("REIMAGE", "RMA")
        )
        assert reimaged / len(hard) > 0.8

    def test_reproducible_with_same_seed(self):
        _s1, log1 = run_simulation(seed=9)
        _s2, log2 = run_simulation(seed=9)
        assert log1 == log2

    def test_different_seeds_differ(self):
        _s1, log1 = run_simulation(seed=9)
        _s2, log2 = run_simulation(seed=10)
        assert log1 != log2

    def test_machines_recover_and_fail_again(self):
        simulator, log = run_simulation()
        total_failures = sum(
            m.failure_count for m in simulator.machines.values()
        )
        total_recoveries = sum(
            m.recovery_count for m in simulator.machines.values()
        )
        assert total_recoveries == total_failures
        assert total_failures > len(simulator.machines)

    def test_always_strongest_policy_single_action(self):
        _sim, log = run_simulation(
            policy=AlwaysStrongestPolicy(default_catalog())
        )
        for process in log.to_processes():
            assert process.actions == ("RMA",)


class TestNoiseInjection:
    def test_noise_adds_foreign_symptoms(self):
        _sim, log = run_simulation(
            config=tiny_config(noise_probability=0.5)
        )
        processes = log.to_processes()
        foreign = 0
        for process in processes:
            primaries = {
                s
                for s in process.symptom_set
                if s.startswith("error:")
            }
            if len(primaries) > 1:
                foreign += 1
        assert foreign > 0

    def test_zero_noise_keeps_processes_single_fault(self):
        _sim, log = run_simulation(config=tiny_config(noise_probability=0.0))
        for process in log.to_processes():
            primaries = {
                s for s in process.symptom_set if s.startswith("error:")
            }
            assert len(primaries) == 1


class TestActionCap:
    def test_cap_forces_manual_repair(self):
        config = tiny_config(max_actions=3)
        stubborn = FaultCatalog(
            [
                FaultType(
                    name="stubborn",
                    primary_symptom="error:Stubborn",
                    cure_probabilities={},
                )
            ]
        )
        catalog = default_catalog()
        simulator = ClusterSimulator(
            config,
            stubborn,
            UserDefinedPolicy(catalog),
            catalog,
            RngStreams(3),
        )
        log = simulator.run()
        for process in log.to_processes():
            assert len(process.actions) <= 3
            assert process.final_action == "RMA"

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_config(max_actions=1)
        with pytest.raises(ConfigurationError):
            tiny_config(machine_count=0)
        with pytest.raises(ConfigurationError):
            tiny_config(noise_probability=1.5)
