"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import render_series, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "33" in lines[3]
        # All rows share a width.
        assert len({len(line) for line in lines}) <= 2

    def test_title_is_first_line(self):
        text = render_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_floats_are_compacted(self):
        text = render_table(["v"], [[1.23456789]])
        assert "1.235" in text

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_union_of_x_values(self):
        text = render_series(
            {"s1": {1: 10}, "s2": {2: 20}}, x_label="rank"
        )
        assert "rank" in text
        assert "-" in text  # missing point placeholder

    def test_values_appear(self):
        text = render_series({"cov": {0.1: 0.97, 0.2: 0.9}}, x_label="minp")
        assert "0.97" in text

    def test_sorted_x_order(self):
        text = render_series({"s": {3: 1, 1: 2, 2: 3}})
        lines = text.splitlines()
        body = [line.split("|")[0].strip() for line in lines[2:]]
        assert body == ["1", "2", "3"]
