"""Tests for exploration strategies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learning.exploration import (
    BoltzmannExplorer,
    EpsilonGreedyExplorer,
    TemperatureSchedule,
)


class TestTemperatureSchedule:
    def test_geometric_decay(self):
        schedule = TemperatureSchedule(initial=100.0, decay=0.5, floor=1.0)
        assert schedule.temperature(0) == 100.0
        assert schedule.temperature(1) == 50.0
        assert schedule.temperature(2) == 25.0

    def test_floor_respected(self):
        schedule = TemperatureSchedule(initial=100.0, decay=0.5, floor=10.0)
        assert schedule.temperature(50) == 10.0

    def test_search_phase_detection(self):
        schedule = TemperatureSchedule(initial=100.0, decay=0.5, floor=10.0)
        assert not schedule.is_search_phase(0)
        assert schedule.is_search_phase(10)

    def test_negative_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            TemperatureSchedule().temperature(-1)

    def test_floor_above_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            TemperatureSchedule(initial=1.0, floor=2.0)

    def test_bad_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            TemperatureSchedule(decay=0.0)


class TestBoltzmannExplorer:
    def test_probabilities_sum_to_one(self):
        explorer = BoltzmannExplorer(seed=0)
        probabilities = explorer.probabilities(
            {"a": 100.0, "b": 500.0}, sweep=0
        )
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_lower_cost_more_probable(self):
        explorer = BoltzmannExplorer(
            TemperatureSchedule(initial=100.0), seed=0
        )
        probabilities = explorer.probabilities(
            {"cheap": 10.0, "dear": 500.0}, sweep=0
        )
        assert probabilities["cheap"] > probabilities["dear"]

    def test_high_temperature_near_uniform(self):
        explorer = BoltzmannExplorer(
            TemperatureSchedule(initial=1e9), seed=0
        )
        probabilities = explorer.probabilities(
            {"a": 10.0, "b": 5000.0}, sweep=0
        )
        assert probabilities["a"] == pytest.approx(0.5, abs=0.01)

    def test_low_temperature_near_greedy(self):
        explorer = BoltzmannExplorer(
            TemperatureSchedule(initial=1.0, floor=1.0), seed=0
        )
        probabilities = explorer.probabilities(
            {"a": 10.0, "b": 5000.0}, sweep=0
        )
        assert probabilities["a"] > 0.999

    def test_numerical_stability_with_huge_values(self):
        explorer = BoltzmannExplorer(seed=0)
        probabilities = explorer.probabilities(
            {"a": 1e12, "b": 1e12 + 5.0}, sweep=0
        )
        assert np.isfinite(list(probabilities.values())).all()

    def test_select_draws_according_to_distribution(self):
        explorer = BoltzmannExplorer(
            TemperatureSchedule(initial=100.0, decay=1.0, floor=100.0),
            seed=0,
        )
        draws = [
            explorer.select({"cheap": 10.0, "dear": 600.0}, sweep=0)
            for _ in range(500)
        ]
        assert draws.count("cheap") > 450

    def test_empty_q_values_rejected(self):
        with pytest.raises(ConfigurationError):
            BoltzmannExplorer(seed=0).select({}, sweep=0)


class TestEpsilonGreedyExplorer:
    def test_epsilon_decays_to_floor(self):
        explorer = EpsilonGreedyExplorer(
            epsilon_initial=1.0, decay=0.5, floor=0.1, seed=0
        )
        assert explorer.epsilon(0) == 1.0
        assert explorer.epsilon(10) == pytest.approx(0.1)

    def test_greedy_when_epsilon_zero_floor(self):
        explorer = EpsilonGreedyExplorer(
            epsilon_initial=0.0, floor=0.0, seed=0
        )
        draws = {
            explorer.select({"a": 1.0, "b": 2.0}, sweep=5)
            for _ in range(20)
        }
        assert draws == {"a"}

    def test_fully_random_when_epsilon_one(self):
        explorer = EpsilonGreedyExplorer(
            epsilon_initial=1.0, decay=1.0, floor=1.0, seed=0
        )
        draws = {
            explorer.select({"a": 1.0, "b": 2.0}, sweep=0)
            for _ in range(100)
        }
        assert draws == {"a", "b"}

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            EpsilonGreedyExplorer(epsilon_initial=2.0)
        with pytest.raises(ConfigurationError):
            EpsilonGreedyExplorer(decay=0.0)
