"""Hypothesis property tests over the simulation platform.

Random ladder-shaped recovery-process ensembles are generated, and the
platform's structural invariants are checked: self-replay exactness,
termination under arbitrary proper policies, and cost positivity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_process
from repro.actions import default_catalog
from repro.policies import (
    AlwaysCheapestPolicy,
    AlwaysStrongestPolicy,
    RandomPolicy,
    UserDefinedPolicy,
)
from repro.simplatform.platform import SimulationPlatform

CATALOG = default_catalog()
LADDER = ["TRYNOP", "REBOOT", "REBOOT", "REIMAGE", "RMA"]


@st.composite
def ladder_ensemble(draw):
    """A set of processes with ladder prefixes of random depth."""
    depths = draw(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                 max_size=12)
    )
    step = draw(st.sampled_from([300.0, 900.0, 3600.0]))
    return [
        make_process(
            LADDER[:depth],
            machine=f"m-{i:03d}",
            start=i * 100_000.0,
            step=step,
        )
        for i, depth in enumerate(depths)
    ]


class TestPlatformProperties:
    @given(processes=ladder_ensemble())
    @settings(max_examples=40, deadline=None)
    def test_self_replay_is_exact(self, processes):
        platform = SimulationPlatform(processes, CATALOG)
        policy = UserDefinedPolicy(CATALOG)
        for process in processes:
            result = platform.replay(process, policy)
            assert result.handled
            assert result.cost == pytest.approx(result.real_cost)
            assert result.actions == process.actions

    @given(processes=ladder_ensemble(), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_replay_terminates_under_any_policy(self, processes, seed):
        platform = SimulationPlatform(processes, CATALOG, max_actions=8)
        policies = [
            RandomPolicy(CATALOG, seed=seed),
            AlwaysCheapestPolicy(CATALOG),
            AlwaysStrongestPolicy(CATALOG),
        ]
        for policy in policies:
            for process in processes:
                result = platform.replay(process, policy)
                assert result.handled
                assert len(result.actions) <= 8 + len(process.actions)
                assert result.cost > 0

    @given(processes=ladder_ensemble())
    @settings(max_examples=30, deadline=None)
    def test_strongest_policy_executes_until_covered(self, processes):
        """Always-strongest replays are all-RMA and stop exactly when the
        required multiset is covered (one RMA per required occurrence)."""
        from repro.simplatform.hypotheses import required_strengths

        platform = SimulationPlatform(processes, CATALOG)
        policy = AlwaysStrongestPolicy(CATALOG)
        for process in processes:
            result = platform.replay(process, policy)
            assert result.handled
            assert set(result.actions) == {"RMA"}
            required = required_strengths(process, CATALOG)
            assert len(result.actions) == max(1, len(required))

    @given(processes=ladder_ensemble())
    @settings(max_examples=30, deadline=None)
    def test_replay_is_deterministic(self, processes):
        platform = SimulationPlatform(processes, CATALOG)
        policy = UserDefinedPolicy(CATALOG)
        for process in processes[:3]:
            first = platform.replay(process, policy)
            second = platform.replay(process, policy)
            assert first == second
