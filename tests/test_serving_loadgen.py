"""Tests for storm generation and the fleet-engine load generator."""

import pytest

from repro.actions import default_catalog
from repro.errors import ConfigurationError
from repro.mdp.state import RecoveryState
from repro.policies.binary import load_policy_binary, save_policy_binary
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.serving import (
    DecisionServer,
    ServerBackedPolicy,
    default_storm_faults,
    fleet_storm,
    run_storm,
    storm_states,
)

S0 = RecoveryState.initial("error:X")
S1 = S0.after("REIMAGE", False)


@pytest.fixture
def trained():
    return TrainedPolicy(
        {S0: ("REIMAGE", 7200.0), S1: ("RMA", 172800.0)}, label="t1"
    )


@pytest.fixture
def server(trained):
    return DecisionServer(trained, UserDefinedPolicy(default_catalog()))


class TestStormStates:
    def test_deterministic_under_seed(self, trained):
        a = storm_states(trained, 500, seed=3)
        b = storm_states(trained, 500, seed=3)
        assert a == b
        assert a != storm_states(trained, 500, seed=4)

    def test_unknown_fraction_respected(self, trained):
        states = storm_states(trained, 1000, unknown_fraction=0.25, seed=1)
        unknown = sum(
            1 for s in states if s.error_type.startswith("error:__storm")
        )
        assert unknown == 250

    def test_known_states_come_from_the_table(self, trained):
        states = storm_states(trained, 300, unknown_fraction=0.0, seed=2)
        assert set(states) <= set(trained.rules)

    def test_array_policy_source(self, tmp_path, trained):
        save_policy_binary(trained, tmp_path / "p.rpb")
        array_policy = load_policy_binary(tmp_path / "p.rpb")
        states = storm_states(array_policy, 300, unknown_fraction=0.0, seed=2)
        assert set(states) <= set(trained.rules)

    def test_empty_policy_yields_only_unknowns(self):
        states = storm_states(TrainedPolicy({}), 40, seed=0)
        assert len(states) == 40
        assert all(
            s.error_type.startswith("error:__storm") for s in states
        )

    def test_bad_arguments_rejected(self, trained):
        with pytest.raises(ConfigurationError, match="n_queries"):
            storm_states(trained, -1)
        with pytest.raises(ConfigurationError, match="unknown_fraction"):
            storm_states(trained, 10, unknown_fraction=1.5)


class TestRunStorm:
    def test_report_accounting(self, server, trained):
        states = storm_states(
            trained, 1000, unknown_fraction=0.2, seed=5
        )
        report = run_storm(server, states, batch_size=128)
        assert report.decisions == 1000
        assert report.batches == 8  # ceil(1000 / 128)
        assert report.fallbacks == 200
        assert report.fallback_rate == pytest.approx(0.2)
        assert report.decisions_per_second > 0
        assert report.p99_latency_s >= report.p50_latency_s >= 0
        assert report.versions == (1,)

    def test_render_mentions_throughput(self, server, trained):
        states = storm_states(trained, 64, seed=5)
        text = run_storm(server, states, batch_size=32).render()
        assert "decisions/s" in text
        assert "fallback rate" in text

    def test_bad_batch_size(self, server):
        with pytest.raises(ConfigurationError, match="batch_size"):
            run_storm(server, [], batch_size=0)


class TestServerBackedPolicy:
    def test_adapts_served_decisions(self, server):
        policy = ServerBackedPolicy(server)
        assert policy.batch_safe
        decision = policy.decide(S0)
        assert decision.action == "REIMAGE"
        assert decision.source == "serving:t1"

    def test_proper_on_unknown_states(self, server):
        policy = ServerBackedPolicy(server)
        stranger = RecoveryState.initial("error:never-seen")
        assert policy.decide(stranger).action == "TRYNOP"
        outcomes = policy.decide_batch([S0, stranger])
        assert [d.action for d in outcomes] == ["REIMAGE", "TRYNOP"]


class TestFleetStorm:
    def test_fleet_drives_the_server(self, server):
        result = fleet_storm(
            server, machines=300, days=3.0, seed=11
        )
        assert result.machines == 300
        assert result.processes > 0
        assert result.decisions > 0
        # Every fleet decision went through the server.
        assert server.decision_count == result.decisions
        assert sum(result.versions.values()) == result.decisions

    def test_fallbacks_counted(self, server):
        # The trained table knows nothing about the storm catalog's
        # error types, so every decision must fall back.
        result = fleet_storm(server, machines=200, days=2.0, seed=7)
        assert result.fallbacks == result.decisions

    def test_deterministic_under_seed(self, trained):
        catalog = default_catalog()
        first = fleet_storm(
            DecisionServer(trained, UserDefinedPolicy(catalog)),
            machines=150,
            days=2.0,
            seed=23,
        )
        second = fleet_storm(
            DecisionServer(trained, UserDefinedPolicy(catalog)),
            machines=150,
            days=2.0,
            seed=23,
        )
        assert first == second

    def test_default_storm_faults_shape(self):
        faults = default_storm_faults()
        symptoms = {f.primary_symptom for f in faults.fault_types}
        assert symptoms == {"error:Transient", "error:Hard"}
