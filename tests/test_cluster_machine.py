"""Tests for the machine lifecycle state machine."""

import pytest

from repro.cluster.faults import FaultType
from repro.cluster.machine import Machine, MachineState
from repro.errors import SimulationError


@pytest.fixture
def fault():
    return FaultType(name="f", primary_symptom="error:X")


class TestLifecycle:
    def test_initial_state_healthy(self):
        machine = Machine("m-1")
        assert machine.state is MachineState.HEALTHY

    def test_fail_begin_recover_cycle(self, fault):
        machine = Machine("m-1")
        machine.fail(fault)
        assert machine.state is MachineState.FAILED
        assert machine.active_fault is fault
        machine.begin_recovery()
        machine.record_attempt("REBOOT")
        machine.recover()
        assert machine.state is MachineState.HEALTHY
        assert machine.active_fault is None
        assert machine.actions_tried == []

    def test_counters(self, fault):
        machine = Machine("m-1")
        for _ in range(3):
            machine.fail(fault)
            machine.begin_recovery()
            machine.recover()
        assert machine.failure_count == 3
        assert machine.recovery_count == 3

    def test_attempts_recorded_in_order(self, fault):
        machine = Machine("m-1")
        machine.fail(fault)
        machine.begin_recovery()
        machine.record_attempt("TRYNOP")
        machine.record_attempt("REBOOT")
        assert machine.actions_tried == ["TRYNOP", "REBOOT"]

    def test_noise_fault_tracked(self, fault):
        noise = FaultType(name="g", primary_symptom="error:Y")
        machine = Machine("m-1")
        machine.fail(fault, noise)
        assert machine.noise_fault is noise
        machine.begin_recovery()
        machine.recover()
        assert machine.noise_fault is None


class TestInvalidTransitions:
    def test_fail_while_failed(self, fault):
        machine = Machine("m-1")
        machine.fail(fault)
        with pytest.raises(SimulationError):
            machine.fail(fault)

    def test_begin_recovery_while_healthy(self):
        with pytest.raises(SimulationError):
            Machine("m-1").begin_recovery()

    def test_record_attempt_while_healthy(self):
        with pytest.raises(SimulationError):
            Machine("m-1").record_attempt("REBOOT")

    def test_recover_while_failed_but_not_recovering(self, fault):
        machine = Machine("m-1")
        machine.fail(fault)
        with pytest.raises(SimulationError):
            machine.recover()
