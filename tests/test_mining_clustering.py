"""Tests for symptom clustering and the Figure 3 coverage curve."""

import pytest

from helpers import make_process
from repro.mining.clustering import SymptomClustering, coverage_curve


def processes_two_faults(cross=0):
    """Two disjoint symptom families, plus ``cross`` mixed processes."""
    processes = []
    for i in range(10):
        processes.append(
            make_process(
                ["TRYNOP"],
                machine=f"a-{i}",
                error_type="error:A",
                extra_symptoms=["warn:A1"],
                start=i * 10_000.0,
            )
        )
    for i in range(10):
        processes.append(
            make_process(
                ["REBOOT"],
                machine=f"b-{i}",
                error_type="error:B",
                extra_symptoms=["warn:B1"],
                start=i * 10_000.0,
            )
        )
    for i in range(cross):
        processes.append(
            make_process(
                ["RMA"],
                machine=f"x-{i}",
                error_type="error:A",
                extra_symptoms=["error:B"],
                start=i * 10_000.0,
            )
        )
    return processes


class TestClustering:
    def test_disjoint_families_form_two_clusters(self):
        clustering = SymptomClustering.from_processes(
            processes_two_faults(), minp=0.5
        )
        assert clustering.cluster_count() == 2

    def test_cluster_membership(self):
        clustering = SymptomClustering.from_processes(
            processes_two_faults(), minp=0.5
        )
        assert clustering.cluster_of("error:A") == clustering.cluster_of(
            "warn:A1"
        )
        assert clustering.cluster_of("error:A") != clustering.cluster_of(
            "error:B"
        )

    def test_unknown_symptom_has_no_cluster(self):
        clustering = SymptomClustering.from_processes(
            processes_two_faults(), minp=0.5
        )
        assert clustering.cluster_of("warn:unknown") is None

    def test_cohesion_check(self):
        clustering = SymptomClustering.from_processes(
            processes_two_faults(), minp=0.5
        )
        assert clustering.is_cohesive({"error:A", "warn:A1"})
        assert not clustering.is_cohesive({"error:A", "error:B"})
        assert not clustering.is_cohesive({"error:A", "warn:unknown"})
        assert not clustering.is_cohesive([])

    def test_mixed_process_not_covered(self):
        processes = processes_two_faults(cross=1)
        clustering = SymptomClustering.from_processes(processes, minp=0.5)
        mixed = processes[-1]
        assert not clustering.covers(mixed)

    def test_coverage_fraction(self):
        processes = processes_two_faults(cross=2)
        clustering = SymptomClustering.from_processes(processes, minp=0.5)
        assert clustering.coverage(processes) == pytest.approx(20 / 22)

    def test_high_minp_splits_weak_links(self):
        # warn:A1 co-occurs with error:A in every process, but error:A
        # also appears alone, so the dependence from error:A's side is
        # 10/10 = 1.0 only if every error:A process contains warn:A1.
        processes = processes_two_faults()
        processes.append(
            make_process(
                ["TRYNOP"],
                machine="a-solo",
                error_type="error:A",
                start=999_999.0,
            )
        )
        tight = SymptomClustering.from_processes(processes, minp=0.95)
        assert tight.cluster_of("error:A") != tight.cluster_of("warn:A1")

    def test_coverage_of_empty_ensemble(self):
        clustering = SymptomClustering.from_processes(
            processes_two_faults(), minp=0.5
        )
        assert clustering.coverage([]) == 1.0


class TestCoverageCurve:
    def test_curve_is_monotone_nonincreasing(self, small_processes):
        curve = coverage_curve(
            small_processes, minps=(0.1, 0.3, 0.5, 0.7, 0.9)
        )
        values = [curve[m] for m in sorted(curve)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_curve_keys_match_request(self, small_processes):
        curve = coverage_curve(small_processes, minps=(0.2, 0.4))
        assert set(curve) == {0.2, 0.4}

    def test_values_are_fractions(self, small_processes):
        curve = coverage_curve(small_processes, minps=(0.1, 1.0))
        assert all(0.0 <= v <= 1.0 for v in curve.values())
