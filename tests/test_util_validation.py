"""Tests for repro.util.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction("f", 0.4) == 0.4

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_rejects_endpoints(self, value):
        with pytest.raises(ConfigurationError):
            check_fraction("f", value)
