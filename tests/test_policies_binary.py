"""Tests for the versioned binary policy container (zero-copy serving).

The load-bearing property: a binary round trip must be *decision
equivalent* to the JSON reference — same action, same expected cost,
and the same ``UnhandledStateError`` on every state the trained table
does not cover.  A hypothesis property drives that over arbitrary rule
tables; the unit tests cover the container plumbing (magic, version,
corruption, alignment, mmap).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, LogFormatError, UnhandledStateError
from repro.mdp.state import RecoveryState
from repro.policies.binary import (
    ArrayTrainedPolicy,
    load_policy_binary,
    save_policy_binary,
)
from repro.policies.serialization import load_policy, save_policy
from repro.policies.trained import TrainedPolicy

S0 = RecoveryState.initial("error:X")
S1 = S0.after("REIMAGE", False)
ACTIONS = ["TRYNOP", "REBOOT", "REIMAGE", "RMA"]


@pytest.fixture
def policy():
    return TrainedPolicy(
        {S0: ("REIMAGE", 7200.0), S1: ("RMA", 172800.0)},
        label="night-shift",
    )


class TestBinaryRoundTrip:
    def test_round_trip_preserves_rules(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        count = save_policy_binary(policy, path)
        assert count == 2
        loaded = load_policy_binary(path)
        assert isinstance(loaded, ArrayTrainedPolicy)
        assert len(loaded) == 2
        assert loaded.to_trained().rules == policy.rules
        assert loaded.name == "night-shift"

    def test_decisions_match_original(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        loaded = load_policy_binary(path)
        for state in (S0, S1):
            ours = loaded.decide(state)
            reference = policy.decide(state)
            assert ours.action == reference.action
            assert ours.expected_cost == reference.expected_cost

    def test_unknown_state_raises_like_trained(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        loaded = load_policy_binary(path)
        stranger = RecoveryState.initial("error:Y")
        with pytest.raises(UnhandledStateError, match="no trained rule"):
            loaded.decide(stranger)

    def test_terminal_state_rejected(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        loaded = load_policy_binary(path)
        with pytest.raises(ConfigurationError, match="terminal"):
            loaded.decide(S0.after("REIMAGE", True))

    def test_mmap_and_eager_agree(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        mapped = load_policy_binary(path, mmap=True)
        eager = load_policy_binary(path, mmap=False)
        assert mapped.to_trained().rules == eager.to_trained().rules

    def test_verify_checksum_accepts_good_file(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        loaded = load_policy_binary(path, verify=True)
        assert len(loaded) == 2

    def test_empty_policy_round_trips(self, tmp_path):
        path = tmp_path / "empty.rpb"
        save_policy_binary(TrainedPolicy({}), path)
        loaded = load_policy_binary(path)
        assert len(loaded) == 0
        with pytest.raises(UnhandledStateError):
            loaded.decide(S0)


class TestContainerFormat:
    def test_magic_leads_the_file(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        assert path.read_bytes()[:8] == b"RPROPOLB"

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rpb"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 64)
        with pytest.raises(LogFormatError, match="magic"):
            load_policy_binary(path)

    def test_truncated_file_rejected(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        truncated = tmp_path / "trunc.rpb"
        truncated.write_bytes(path.read_bytes()[:40])
        with pytest.raises(LogFormatError):
            load_policy_binary(truncated)

    def test_corrupt_payload_fails_verification(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a bit inside the cost array
        path.write_bytes(bytes(blob))
        with pytest.raises(LogFormatError, match="checksum"):
            load_policy_binary(path, verify=True)

    def test_arrays_are_aligned(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        loaded = load_policy_binary(path)
        header = json.loads(
            path.read_bytes()[20 : 20 + int.from_bytes(
                path.read_bytes()[12:20], "little"
            )].decode("utf-8")
        )
        for spec in header["arrays"].values():
            assert spec["offset"] % 64 == 0
        assert len(loaded) == 2

    def test_source_path_recorded(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        loaded = load_policy_binary(path)
        assert loaded.source_path == path


# ---------------------------------------------------------------------------
# Hypothesis: binary and JSON serve identical decisions, state for state
# ---------------------------------------------------------------------------

_ERROR_TYPES = st.sampled_from(
    ["error:A", "error:B", "error:Watchdog", "error:Disk-Full"]
)
_HISTORIES = st.lists(st.sampled_from(ACTIONS), min_size=0, max_size=5)
_COSTS = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)


def _state(error_type, history):
    state = RecoveryState.initial(error_type)
    for action in history:
        state = state.after(action, False)
    return state


@st.composite
def _rule_tables(draw):
    entries = draw(
        st.lists(
            st.tuples(
                _ERROR_TYPES,
                _HISTORIES,
                st.sampled_from(ACTIONS),
                _COSTS,
            ),
            min_size=0,
            max_size=30,
        )
    )
    rules = {}
    for error_type, history, action, cost in entries:
        rules[_state(error_type, history)] = (action, cost)
    return TrainedPolicy(rules, label="prop")


@st.composite
def _probe_states(draw):
    error_type = draw(
        st.one_of(_ERROR_TYPES, st.just("error:never-trained"))
    )
    history = draw(st.lists(st.sampled_from(ACTIONS), max_size=7))
    return _state(error_type, history)


class TestBinaryJsonEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        table=_rule_tables(),
        probes=st.lists(_probe_states(), max_size=20),
    )
    def test_same_decision_on_every_state(self, tmp_path_factory, table, probes):
        tmp = tmp_path_factory.mktemp("binprop")
        json_path = tmp / "p.json"
        bin_path = tmp / "p.rpb"
        save_policy(table, json_path)
        save_policy_binary(table, bin_path)
        reference = load_policy(json_path)
        binary = load_policy_binary(bin_path)

        # Every trained rule, plus arbitrary probes (known and unknown).
        for state in list(table.rules) + probes:
            try:
                expected = reference.decide(state)
            except UnhandledStateError:
                with pytest.raises(UnhandledStateError):
                    binary.decide(state)
                continue
            got = binary.decide(state)
            assert got.action == expected.action
            assert got.expected_cost == expected.expected_cost

    @settings(max_examples=30, deadline=None)
    @given(table=_rule_tables(), probes=st.lists(_probe_states(), max_size=16))
    def test_batch_agrees_with_scalar(self, tmp_path_factory, table, probes):
        tmp = tmp_path_factory.mktemp("binbatch")
        bin_path = tmp / "p.rpb"
        save_policy_binary(table, bin_path)
        binary = load_policy_binary(bin_path)
        states = list(table.rules) + probes
        batched = binary.decide_batch(states)
        assert len(batched) == len(states)
        for state, outcome in zip(states, batched):
            try:
                scalar = binary.decide(state)
            except UnhandledStateError:
                assert isinstance(outcome, UnhandledStateError)
                continue
            assert not isinstance(outcome, UnhandledStateError)
            assert outcome.action == scalar.action
            assert outcome.expected_cost == scalar.expected_cost

    @settings(max_examples=30, deadline=None)
    @given(table=_rule_tables())
    def test_round_trip_rules_exact(self, tmp_path_factory, table):
        tmp = tmp_path_factory.mktemp("binrt")
        bin_path = tmp / "p.rpb"
        save_policy_binary(table, bin_path)
        loaded = load_policy_binary(bin_path)
        assert loaded.to_trained().rules == table.rules


class TestArrayPolicyExtras:
    def test_state_at_decodes_every_row(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        loaded = load_policy_binary(path)
        decoded = {loaded.state_at(i) for i in range(len(loaded))}
        assert decoded == set(policy.rules)

    def test_error_types_sorted(self, tmp_path):
        rules = {
            RecoveryState.initial("error:Z"): ("REBOOT", 1.0),
            RecoveryState.initial("error:A"): ("TRYNOP", 2.0),
        }
        path = tmp_path / "p.rpb"
        save_policy_binary(TrainedPolicy(rules), path)
        loaded = load_policy_binary(path)
        assert loaded.error_types() == ("error:A", "error:Z")

    def test_handles_and_expected_cost(self, tmp_path, policy):
        path = tmp_path / "policy.rpb"
        save_policy_binary(policy, path)
        loaded = load_policy_binary(path)
        assert loaded.handles(S0)
        assert not loaded.handles(RecoveryState.initial("error:Y"))
        assert loaded.expected_cost(S0) == pytest.approx(7200.0)
        assert loaded.expected_cost(RecoveryState.initial("error:Y")) is None

    def test_costs_preserved_bit_exact(self, tmp_path):
        # float64 payloads must survive exactly, not via repr rounding.
        cost = 0.1 + 0.2  # famously not 0.3
        rules = {S0: ("REBOOT", cost)}
        path = tmp_path / "p.rpb"
        save_policy_binary(TrainedPolicy(rules), path)
        loaded = load_policy_binary(path)
        assert loaded.expected_cost(S0) == cost
        assert np.float64(loaded.expected_cost(S0)) == np.float64(cost)
