"""Tests for required-action semantics, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_process
from repro.actions import default_catalog
from repro.simplatform.hypotheses import (
    covers,
    required_actions,
    required_strengths,
)

CATALOG = default_catalog()


class TestRequiredActions:
    def test_single_action_process(self):
        process = make_process(["REBOOT"])
        assert required_actions(process, CATALOG) == ("REBOOT",)

    def test_ladder_requires_only_last(self):
        process = make_process(["TRYNOP", "REBOOT", "REIMAGE"])
        assert required_actions(process, CATALOG) == ("REIMAGE",)

    def test_equal_strength_repeats_all_required(self):
        process = make_process(["TRYNOP", "REBOOT", "REBOOT"])
        assert required_actions(process, CATALOG) == ("REBOOT", "REBOOT")

    def test_stronger_predecessors_included(self):
        # Non-monotone log sequence: REIMAGE failed, TRYNOP cured.
        process = make_process(["REIMAGE", "TRYNOP"])
        assert required_actions(process, CATALOG) == ("REIMAGE", "TRYNOP")

    def test_last_action_only_ablation(self):
        process = make_process(["TRYNOP", "REBOOT", "REBOOT"])
        assert required_actions(
            process, CATALOG, last_action_only=True
        ) == ("REBOOT",)

    def test_strengths_descending(self):
        process = make_process(["REIMAGE", "TRYNOP"])
        assert required_strengths(process, CATALOG) == (2, 0)


class TestCovers:
    def test_empty_required_always_covered(self):
        assert covers((), ())
        assert covers((), (3,))

    def test_exact_match(self):
        assert covers((1,), (1,))

    def test_stronger_replaces_weaker(self):
        assert covers((1,), (2,))

    def test_weaker_insufficient(self):
        assert not covers((2,), (1,))

    def test_multiplicity_enforced(self):
        assert not covers((1, 1), (3,))
        assert covers((1, 1), (3, 1))

    def test_mixed_strengths_greedy_matching(self):
        # required {2, 1}; executed {2, 1} covers; {1, 1} does not.
        assert covers((2, 1), (1, 2))
        assert not covers((2, 1), (1, 1))

    def test_extra_executed_harmless(self):
        assert covers((1,), (0, 0, 1, 0))


strength = st.integers(min_value=0, max_value=3)
multiset = st.lists(strength, min_size=0, max_size=6)


class TestCoversProperties:
    @given(required=multiset, executed=multiset)
    @settings(max_examples=200, deadline=None)
    def test_matches_bruteforce_matching(self, required, executed):
        """Greedy coverage equals exhaustive bipartite matching."""
        import itertools

        def brute(req, exe):
            if len(exe) < len(req):
                return False
            for perm in itertools.permutations(exe, len(req)):
                if all(e >= r for r, e in zip(req, perm)):
                    return True
            return not req

        assert covers(required, executed) == brute(required, executed)

    @given(required=multiset, executed=multiset, extra=strength)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_executed(self, required, executed, extra):
        """Adding an executed action never breaks coverage."""
        if covers(required, executed):
            assert covers(required, executed + [extra])

    @given(required=multiset, executed=multiset)
    @settings(max_examples=200, deadline=None)
    def test_strengthening_executed_preserves_coverage(
        self, required, executed
    ):
        if covers(required, executed):
            assert covers(required, [e + 1 for e in executed])

    @given(required=multiset)
    @settings(max_examples=100, deadline=None)
    def test_required_covers_itself(self, required):
        assert covers(required, list(required))

    @given(required=multiset, executed=multiset, extra=strength)
    @settings(max_examples=200, deadline=None)
    def test_antitone_in_required(self, required, executed, extra):
        """Adding a requirement never creates coverage."""
        if not covers(required, executed):
            assert not covers(required + [extra], executed)


class TestSelfConsistency:
    """Replaying a process's own actions succeeds exactly at its end."""

    @pytest.mark.parametrize(
        "sequence",
        [
            ["TRYNOP"],
            ["TRYNOP", "REBOOT"],
            ["TRYNOP", "REBOOT", "REBOOT"],
            ["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"],
            ["TRYNOP", "REBOOT", "REBOOT", "REIMAGE", "RMA"],
        ],
    )
    def test_own_prefixes_never_cover_early(self, sequence):
        process = make_process(sequence)
        required = required_strengths(process, CATALOG)
        strengths = [CATALOG[a].strength for a in sequence]
        for cut in range(1, len(sequence)):
            assert not covers(required, strengths[:cut]), (
                f"prefix of length {cut} covered {sequence}"
            )
        assert covers(required, strengths)
