"""Tests for value iteration and derived policies."""

import pytest

from repro.errors import ConfigurationError
from repro.mdp.model import FiniteMDP, Transition
from repro.mdp.value_iteration import (
    greedy_policy_from_values,
    q_values_from_values,
    value_iteration,
)


def retry_mdp(p=0.5, cost_retry=1.0, cost_giveup=10.0):
    """Retry (cost 1, success p) or give up (cost 10, certain)."""
    return FiniteMDP(
        {
            "s": {
                "retry": [
                    Transition(p, cost_retry, "done"),
                    Transition(1 - p, cost_retry, "s"),
                ],
                "giveup": [Transition(1.0, cost_giveup, "done")],
            }
        },
        terminal_states=["done"],
    )


class TestValueIteration:
    def test_geometric_retry_value(self):
        # V = min(cost/p, giveup) = min(2, 10) = 2 for p = 0.5.
        result = value_iteration(retry_mdp(p=0.5))
        assert result.converged
        assert result.values["s"] == pytest.approx(2.0, abs=1e-6)

    def test_giveup_preferred_when_retry_hopeless(self):
        result = value_iteration(retry_mdp(p=0.05))
        # cost/p = 20 > 10, so giving up wins.
        assert result.values["s"] == pytest.approx(10.0, abs=1e-6)

    def test_terminal_value_is_zero(self):
        result = value_iteration(retry_mdp())
        assert result.values["done"] == 0.0

    def test_discounting(self):
        # With discount < 1 the fixed point V = c + d*(1-p)*V.
        result = value_iteration(retry_mdp(p=0.5), discount=0.9)
        expected = 1.0 / (1.0 - 0.9 * 0.5)
        assert result.values["s"] == pytest.approx(
            min(expected, 10.0), abs=1e-6
        )

    def test_chain_of_states(self):
        mdp = FiniteMDP(
            {
                "a": {"go": [Transition(1.0, 1.0, "b")]},
                "b": {"go": [Transition(1.0, 2.0, "t")]},
            },
            terminal_states=["t"],
        )
        result = value_iteration(mdp)
        assert result.values["a"] == pytest.approx(3.0)

    def test_improper_model_reports_non_convergence(self):
        # Single action loops forever with positive cost: V diverges.
        mdp = FiniteMDP(
            {"s": {"loop": [Transition(1.0, 1.0, "s")]}},
            terminal_states=[],
        )
        result = value_iteration(mdp, max_iterations=500)
        assert not result.converged

    def test_bad_discount_rejected(self):
        with pytest.raises(ConfigurationError):
            value_iteration(retry_mdp(), discount=0.0)


class TestDerivedPolicies:
    def test_q_values_consistent_with_v(self):
        mdp = retry_mdp(p=0.5)
        result = value_iteration(mdp)
        q = q_values_from_values(mdp, result.values)
        assert min(
            q[("s", "retry")], q[("s", "giveup")]
        ) == pytest.approx(result.values["s"], abs=1e-6)

    def test_greedy_policy_picks_retry_when_cheap(self):
        mdp = retry_mdp(p=0.5)
        result = value_iteration(mdp)
        policy = greedy_policy_from_values(mdp, result.values)
        assert policy["s"] == "retry"

    def test_greedy_policy_picks_giveup_when_hopeless(self):
        mdp = retry_mdp(p=0.01)
        result = value_iteration(mdp)
        policy = greedy_policy_from_values(mdp, result.values)
        assert policy["s"] == "giveup"
