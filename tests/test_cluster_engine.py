"""Tests for the discrete-event simulation engine."""

import pytest

from repro.cluster.engine import SimulationEngine
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append("b"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.run()
        assert fired == ["a", "b"]

    def test_equal_times_fire_in_schedule_order(self):
        engine = SimulationEngine()
        fired = []
        for name in "abc":
            engine.schedule_at(1.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(7.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [7.5]

    def test_schedule_after(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(2.0, lambda: engine.schedule_after(3.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_scheduling_in_past_raises(self):
        engine = SimulationEngine()
        engine.schedule_at(10.0, lambda: engine.schedule_at(5.0, lambda: None))
        with pytest.raises(SimulationError, match="clock"):
            engine.run()

    def test_negative_delay_raises(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)


class TestRun:
    def test_run_until_leaves_future_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        count = engine.run(until=5.0)
        assert count == 1
        assert fired == [1]
        assert engine.pending == 1
        assert engine.now == 5.0

    def test_run_continues_after_until(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        engine.run()
        assert fired == [10]

    def test_cascading_events(self):
        engine = SimulationEngine()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.schedule_after(1.0, lambda: chain(depth + 1))

        engine.schedule_at(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]

    def test_max_events_guard(self):
        engine = SimulationEngine()

        def forever():
            engine.schedule_after(1.0, forever)

        engine.schedule_at(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=10)

    def test_processed_counter(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.schedule_at(float(t), lambda: None)
        engine.run()
        assert engine.processed == 5

    def test_reentrant_run_rejected(self):
        engine = SimulationEngine()

        def nested():
            engine.run()

        engine.schedule_at(0.0, nested)
        with pytest.raises(SimulationError, match="reentrant"):
            engine.run()
