"""Tests for the event monitor and fault detector components."""

import pytest

from repro.cluster.detector import FaultDetector
from repro.cluster.monitor import EventMonitor
from repro.errors import ConfigurationError
from repro.recoverylog.entry import LogEntry


class TestEventMonitor:
    def test_records_into_log(self):
        monitor = EventMonitor()
        monitor.record_symptom(1.0, "m", "error:X")
        monitor.record_action(2.0, "m", "REBOOT")
        monitor.record_success(3.0, "m")
        assert len(monitor.log) == 3
        assert monitor.log[2].is_success

    def test_listeners_notified_in_order(self):
        monitor = EventMonitor()
        seen = []
        monitor.subscribe(lambda e: seen.append(("a", e.description)))
        monitor.subscribe(lambda e: seen.append(("b", e.description)))
        monitor.record_symptom(1.0, "m", "error:X")
        assert seen == [("a", "error:X"), ("b", "error:X")]

    def test_external_log_shared(self):
        from repro.recoverylog.log import RecoveryLog

        log = RecoveryLog()
        monitor = EventMonitor(log)
        monitor.record_symptom(1.0, "m", "error:X")
        assert len(log) == 1


class TestFaultDetector:
    def test_detects_first_symptom_only(self):
        detections = []
        detector = FaultDetector(lambda m, s: detections.append((m, s)))
        detector.observe(LogEntry.symptom(1.0, "m", "error:X"))
        detector.observe(LogEntry.symptom(2.0, "m", "error:X"))
        detector.observe(LogEntry.symptom(3.0, "m", "warn:Y"))
        assert detections == [("m", "error:X")]
        assert detector.detections == 1

    def test_success_closes_recovery(self):
        detections = []
        detector = FaultDetector(lambda m, s: detections.append((m, s)))
        detector.observe(LogEntry.symptom(1.0, "m", "error:X"))
        detector.observe(LogEntry.success(5.0, "m"))
        detector.observe(LogEntry.symptom(9.0, "m", "error:Y"))
        assert detections == [("m", "error:X"), ("m", "error:Y")]

    def test_machines_tracked_independently(self):
        detections = []
        detector = FaultDetector(lambda m, s: detections.append(m))
        detector.observe(LogEntry.symptom(1.0, "m-a", "error:X"))
        detector.observe(LogEntry.symptom(2.0, "m-b", "error:X"))
        assert detections == ["m-a", "m-b"]

    def test_active_symptom(self):
        detector = FaultDetector(lambda m, s: None)
        detector.observe(LogEntry.symptom(1.0, "m", "error:X"))
        assert detector.active_symptom("m") == "error:X"
        assert detector.active_symptom("other") is None

    def test_actions_do_not_trigger(self):
        detections = []
        detector = FaultDetector(lambda m, s: detections.append(m))
        detector.observe(LogEntry.action(1.0, "m", "REBOOT"))
        assert detections == []

    def test_missing_handler_raises(self):
        detector = FaultDetector()
        with pytest.raises(ConfigurationError):
            detector.observe(LogEntry.symptom(1.0, "m", "error:X"))

    def test_set_handler_later(self):
        detector = FaultDetector()
        seen = []
        detector.set_handler(lambda m, s: seen.append(s))
        detector.observe(LogEntry.symptom(1.0, "m", "error:X"))
        assert seen == ["error:X"]
