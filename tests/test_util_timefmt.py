"""Tests for repro.util.timefmt."""

from repro.util.timefmt import format_duration, format_wallclock


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(45) == "45s"

    def test_minutes(self):
        assert format_duration(125) == "2m 5s"

    def test_hours(self):
        assert format_duration(3725) == "1h 2m 5s"

    def test_days(self):
        assert format_duration(90_000) == "1d 1h 0m 0s"

    def test_negative(self):
        assert format_duration(-61) == "-1m 1s"

    def test_zero(self):
        assert format_duration(0) == "0s"


class TestFormatWallclock:
    def test_morning(self):
        assert format_wallclock(3 * 3600 + 7 * 60 + 12) == "3:07:12 am"

    def test_midnight_renders_twelve(self):
        assert format_wallclock(0) == "12:00:00 am"

    def test_noon(self):
        assert format_wallclock(12 * 3600) == "12:00:00 pm"

    def test_afternoon(self):
        assert format_wallclock(15 * 3600 + 30 * 60) == "3:30:00 pm"

    def test_wraps_across_days(self):
        assert format_wallclock(86_400 + 60) == "12:01:00 am"
