"""Tests for data-driven initial-policy design (index rule)."""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.errors import EvaluationError, UnhandledStateError
from repro.mdp.state import RecoveryState
from repro.policies.index_policy import action_indices, design_index_policy

CATALOG = default_catalog()


def hard_processes():
    return ladder_processes(
        "error:Hard",
        [
            (["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 30),
            (["TRYNOP", "REBOOT"], 2),
        ],
        realistic_durations=True,
    )


def soft_processes():
    return ladder_processes(
        "error:Soft",
        [(["TRYNOP"], 20), (["TRYNOP", "REBOOT"], 10)],
        realistic_durations=True,
    )


class TestActionIndices:
    def test_probabilities_from_required_sets(self):
        indices = action_indices("error:Soft", soft_processes(), CATALOG)
        # 20 of 30 processes are cured by one TRYNOP.
        assert indices["TRYNOP"][0] == pytest.approx(20 / 30)
        # REBOOT covers both {T} and {R} -> probability 1.
        assert indices["REBOOT"][0] == pytest.approx(1.0)

    def test_hopeless_action_gets_infinite_index(self):
        indices = action_indices("error:Hard", hard_processes(), CATALOG)
        assert indices["TRYNOP"][2] == float("inf")

    def test_index_is_cost_over_probability(self):
        indices = action_indices("error:Soft", soft_processes(), CATALOG)
        probability, cost, index = indices["REBOOT"]
        assert index == pytest.approx(cost / probability)

    def test_empty_processes_rejected(self):
        with pytest.raises(EvaluationError):
            action_indices("error:X", [], CATALOG)


class TestDesignIndexPolicy:
    @pytest.fixture
    def policy(self):
        return design_index_policy(
            {"error:Hard": hard_processes(), "error:Soft": soft_processes()},
            CATALOG,
        )

    def test_jumps_to_reimage_for_hard_type(self, policy):
        assert (
            policy.decide(RecoveryState.initial("error:Hard")).action
            == "REIMAGE"
        )

    def test_watches_first_for_soft_type(self, policy):
        assert (
            policy.decide(RecoveryState.initial("error:Soft")).action
            == "TRYNOP"
        )

    def test_chains_are_monotone(self, policy):
        for error_type in ("error:Hard", "error:Soft"):
            state = RecoveryState.initial(error_type)
            strengths = []
            for _ in range(6):
                action = policy.decide(state).action
                strengths.append(CATALOG[action].strength)
                state = state.after(action, False)
            assert strengths == sorted(strengths)

    def test_chain_ends_in_manual(self, policy):
        state = RecoveryState.initial("error:Hard")
        for _ in range(18):
            action = policy.decide(state).action
            state = state.after(action, False)
        assert action == "RMA"

    def test_unknown_type_unhandled(self, policy):
        with pytest.raises(UnhandledStateError):
            policy.decide(RecoveryState.initial("error:Ghost"))

    def test_label(self, policy):
        assert policy.name == "index-designed"

    def test_beats_ladder_on_hard_type(self, policy):
        from repro.evaluation.evaluator import PolicyEvaluator

        evaluator = PolicyEvaluator(hard_processes(), CATALOG)
        result = evaluator.evaluate(policy)
        assert result.overall_relative_cost < 0.85

    def test_matches_ladder_cost_on_soft_type(self, policy):
        from repro.evaluation.evaluator import PolicyEvaluator

        evaluator = PolicyEvaluator(soft_processes(), CATALOG)
        result = evaluator.evaluate(policy)
        assert result.overall_relative_cost == pytest.approx(1.0, abs=0.1)

    def test_empty_type_skipped(self):
        policy = design_index_policy(
            {"error:Soft": soft_processes(), "error:Empty": []}, CATALOG
        )
        assert policy.error_types() == ("error:Soft",)
