"""Tests for the selection-tree extractor (Section 5.3)."""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.errors import ConfigurationError
from repro.learning.qlearning import QLearningConfig, QLearningTrainer
from repro.learning.selection_tree import (
    SelectionTreeConfig,
    SelectionTreeExtractor,
)
from repro.mdp.state import RecoveryState
from repro.policies import UserDefinedPolicy
from repro.simplatform.platform import SimulationPlatform

CATALOG = default_catalog()


def hard_processes():
    return ladder_processes(
        "error:Hard",
        [
            (["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 30),
            (["TRYNOP", "REBOOT"], 2),
        ],
        realistic_durations=True,
    )


@pytest.fixture(scope="module")
def trained():
    processes = hard_processes()
    platform = SimulationPlatform(processes, CATALOG)
    trainer = QLearningTrainer(
        platform, QLearningConfig(max_sweeps=80, seed=2)
    )
    result = trainer.train_type("error:Hard", processes)
    return platform, trainer, result.qtable, processes


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": -0.1},
            {"check_interval": 0},
            {"stable_checks": 0},
            {"max_candidates": 0},
            {"evaluation_sample": 0},
            {"improvement_margin": -0.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SelectionTreeConfig(**kwargs)


class TestCandidateEnumeration:
    def test_candidates_cover_root_actions(self, trained):
        platform, _trainer, qtable, _processes = trained
        extractor = SelectionTreeExtractor(platform)
        candidates = extractor.candidate_rule_tables(qtable, "error:Hard")
        s0 = RecoveryState.initial("error:Hard")
        roots = {rules[s0][0] for rules in candidates if s0 in rules}
        # branch_all_at_root: every visited root action appears.
        assert roots == set(CATALOG.names())

    def test_monotone_chains_enforced(self, trained):
        platform, _trainer, qtable, _processes = trained
        extractor = SelectionTreeExtractor(platform)
        for rules in extractor.candidate_rule_tables(qtable, "error:Hard"):
            s0 = RecoveryState.initial("error:Hard")
            chain = []
            state = s0
            while state in rules:
                chain.append(rules[state][0])
                state = state.after(rules[state][0], False)
            strengths = [CATALOG[a].strength for a in chain]
            assert strengths == sorted(strengths)

    def test_candidate_cap_respected(self, trained):
        platform, _trainer, qtable, _processes = trained
        extractor = SelectionTreeExtractor(
            platform, SelectionTreeConfig(threshold=5.0, max_candidates=4)
        )
        candidates = extractor.candidate_rule_tables(qtable, "error:Hard")
        # The cap bounds branching; a small overshoot from in-flight
        # branches is acceptable but it must stay near the cap.
        assert len(candidates) <= 8

    def test_unknown_type_yields_single_empty_candidate(self, trained):
        platform, _trainer, qtable, _processes = trained
        extractor = SelectionTreeExtractor(platform)
        candidates = extractor.candidate_rule_tables(qtable, "error:Never")
        assert candidates == [{}]


class TestEvaluation:
    def test_evaluate_matches_manual_replay(self, trained):
        platform, _trainer, qtable, processes = trained
        extractor = SelectionTreeExtractor(platform)
        rules, cost, count = extractor.extract_best(
            qtable, processes, "error:Hard"
        )
        assert count >= 1
        # Re-evaluate independently.
        assert extractor.evaluate(rules, processes) == pytest.approx(cost)

    def test_best_candidate_jumps_to_reimage(self, trained):
        platform, _trainer, qtable, processes = trained
        extractor = SelectionTreeExtractor(platform)
        rules, _cost, _count = extractor.extract_best(
            qtable, processes, "error:Hard"
        )
        s0 = RecoveryState.initial("error:Hard")
        assert rules[s0][0] == "REIMAGE"

    def test_evaluation_sample_thins_large_ensembles(self, trained):
        platform, _trainer, qtable, processes = trained
        extractor = SelectionTreeExtractor(
            platform, SelectionTreeConfig(evaluation_sample=5)
        )
        rules, _cost, _count = extractor.extract_best(
            qtable, processes, "error:Hard"
        )
        assert rules  # still works with a thin sample

    def test_baseline_margin_keeps_incumbent_on_ties(self, trained):
        platform, _trainer, qtable, processes = trained
        # With an absurd margin no candidate can win; the user ladder's
        # rules are returned.
        extractor = SelectionTreeExtractor(
            platform, SelectionTreeConfig(improvement_margin=0.99)
        )
        baseline = UserDefinedPolicy(CATALOG)
        rules, _cost, _count = extractor.extract_best(
            qtable, processes, "error:Hard", baseline=baseline
        )
        s0 = RecoveryState.initial("error:Hard")
        assert rules[s0][0] == "TRYNOP"

    def test_baseline_overridden_on_clear_win(self, trained):
        platform, _trainer, qtable, processes = trained
        extractor = SelectionTreeExtractor(
            platform, SelectionTreeConfig(improvement_margin=0.03)
        )
        rules, _cost, _count = extractor.extract_best(
            qtable, processes, "error:Hard", baseline=UserDefinedPolicy(CATALOG)
        )
        s0 = RecoveryState.initial("error:Hard")
        assert rules[s0][0] == "REIMAGE"

    def test_empty_process_list_rejected(self, trained):
        platform, _trainer, qtable, _processes = trained
        extractor = SelectionTreeExtractor(platform)
        from repro.errors import TrainingError

        with pytest.raises(TrainingError):
            extractor.evaluate({}, [])


class TestTreeTrainingCourse:
    def test_converges_faster_than_standard(self):
        processes = hard_processes()
        platform = SimulationPlatform(processes, CATALOG)
        trainer = QLearningTrainer(
            platform, QLearningConfig(max_sweeps=400, seed=3)
        )
        extractor = SelectionTreeExtractor(
            platform,
            SelectionTreeConfig(min_sweeps=20, check_interval=10),
        )
        outcome = extractor.train_type(trainer, "error:Hard", processes)
        assert outcome.training.converged
        assert outcome.training.sweeps_to_convergence < 100
        assert outcome.expected_cost > 0
        s0 = RecoveryState.initial("error:Hard")
        assert outcome.rules[s0][0] == "REIMAGE"
