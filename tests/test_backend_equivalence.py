"""Dict/array Q-table backend equivalence.

The array backend (:class:`~repro.learning.qtable_array.ArrayQTable`)
is a pure performance transformation of the reference dict backend: the
contract is *bit-identical* behaviour — same Q values, visit counts,
greedy policy, RNG draw sequence and convergence sweeps.  This module
enforces the contract at three levels:

* hypothesis property tests drive both backends through random
  update/restore/query sequences and compare every observable after
  every operation;
* end-to-end ``train_type`` courses under both backends (and both
  exploration strategies) must produce identical tables and metadata;
* the parallel engine and checkpoint/resume must behave identically
  across backends — including a checkpoint written under one backend
  resuming under the other, in both directions.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.core import PipelineConfig, RecoveryPolicyLearner
from repro.errors import ConfigurationError
from repro.learning.parallel import ParallelTrainingEngine
from repro.learning.qlearning import QLearningConfig, QLearningTrainer
from repro.learning.qtable import QTable, QTableBackend
from repro.learning.qtable_array import (
    QTABLE_BACKENDS,
    ArrayQTable,
    create_qtable,
)
from repro.learning.selection_tree import SelectionTreeConfig
from repro.mdp.state import RecoveryState
from repro.simplatform.platform import SimulationPlatform

CATALOG = default_catalog()
ACTIONS = tuple(CATALOG.names())

# A small pool of states (one chain plus branches) so random operation
# sequences revisit states often enough to exercise greedy flips.
_S0 = RecoveryState.initial("error:X")
STATES = [
    _S0,
    _S0.after("TRYNOP", False),
    _S0.after("REBOOT", False),
    _S0.after("TRYNOP", False).after("REBOOT", False),
    _S0.after("TRYNOP", False).after("TRYNOP", False),
    RecoveryState.initial("error:Y"),
]
TERMINAL = _S0.after("REBOOT", True)

_targets = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("update"),
            st.integers(0, len(STATES) - 1),
            st.integers(0, len(ACTIONS) - 1),
            _targets,
        ),
        st.tuples(
            st.just("restore"),
            st.integers(0, len(STATES) - 1),
            st.integers(0, len(ACTIONS) - 1),
            _targets,
            st.integers(1, 50),
        ),
        st.tuples(st.just("check_policy")),
    ),
    min_size=1,
    max_size=60,
)


def observables(table: QTableBackend):
    """Everything the protocol exposes, as one comparable structure."""
    return {
        "len": len(table),
        "states": list(table.states()),
        "cells": {
            (state, action): (
                table.value(state, action),
                table.visit_count(state, action),
            )
            for state in STATES
            for action in ACTIONS
        },
        "rows": {state: table.values_for(state) for state in STATES},
        "totals": {state: table.total_visits(state) for state in STATES},
        "greedy": {state: table.greedy_action(state) for state in STATES},
        "ranked": {state: table.ranked_actions(state) for state in STATES},
        "bootstrap": {
            state: table.bootstrap_value(state)
            for state in STATES + [TERMINAL]
        },
        "min": {
            state: table.min_value(state) for state in STATES + [TERMINAL]
        },
        "underexplored": {
            (state, k): table.underexplored_action(state, k)
            for state in STATES
            for k in (0, 1, 3)
        },
        "known": {state: table.known(state) for state in STATES},
    }


class TestPropertyEquivalence:
    @given(ops=_ops, alpha_floor=st.sampled_from([0.0, 0.08, 0.5]))
    @settings(max_examples=120, deadline=None)
    def test_random_operation_sequences_match(self, ops, alpha_floor):
        reference = QTable(ACTIONS, alpha_floor=alpha_floor)
        fast = ArrayQTable(ACTIONS, alpha_floor=alpha_floor)
        for op in ops:
            if op[0] == "update":
                _, si, ai, target = op
                delta_ref = reference.update(STATES[si], ACTIONS[ai], target)
                delta_fast = fast.update(STATES[si], ACTIONS[ai], target)
                assert delta_ref == delta_fast
            elif op[0] == "restore":
                _, si, ai, value, visits = op
                reference.restore(STATES[si], ACTIONS[ai], value, visits)
                fast.restore(STATES[si], ACTIONS[ai], value, visits)
            else:
                assert (
                    reference.greedy_policy_changed()
                    == fast.greedy_policy_changed()
                )
            # Exact equality on purpose: floats must match bit for bit.
            assert observables(reference) == observables(fast)

    @given(ops=_ops)
    @settings(max_examples=40, deadline=None)
    def test_policy_change_flag_between_sequences(self, ops):
        """The convergence flag agrees when checked only at the end."""
        reference = QTable(ACTIONS)
        fast = ArrayQTable(ACTIONS)
        assert (
            reference.greedy_policy_changed() == fast.greedy_policy_changed()
        )
        for op in ops:
            if op[0] == "update":
                _, si, ai, target = op
                reference.update(STATES[si], ACTIONS[ai], target)
                fast.update(STATES[si], ACTIONS[ai], target)
            elif op[0] == "restore":
                _, si, ai, value, visits = op
                reference.restore(STATES[si], ACTIONS[ai], value, visits)
                fast.restore(STATES[si], ACTIONS[ai], value, visits)
        assert (
            reference.greedy_policy_changed() == fast.greedy_policy_changed()
        )
        # And once more with no writes in between: both must say stable.
        assert reference.greedy_policy_changed() is False
        assert fast.greedy_policy_changed() is False


class TestFactory:
    def test_backends_registry(self):
        assert set(QTABLE_BACKENDS) == {"array", "dict"}
        assert isinstance(create_qtable(ACTIONS, backend="dict"), QTable)
        assert isinstance(create_qtable(ACTIONS, backend="array"), ArrayQTable)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            create_qtable(ACTIONS, backend="sparse")
        with pytest.raises(ConfigurationError, match="backend"):
            QLearningConfig(backend="sparse")

    def test_both_satisfy_protocol(self):
        assert isinstance(QTable(ACTIONS), QTableBackend)
        assert isinstance(ArrayQTable(ACTIONS), QTableBackend)


def _ladder_groups():
    hard = ladder_processes(
        "error:Hard",
        [(["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 12),
         (["TRYNOP", "REBOOT"], 2)],
        realistic_durations=True,
    )
    soft = ladder_processes(
        "error:Soft",
        [(["TRYNOP"], 10), (["TRYNOP", "REBOOT"], 5)],
        realistic_durations=True,
        machine_prefix="s",
    )
    return {"error:Hard": hard, "error:Soft": soft}


def _train(backend: str, exploration: str = "boltzmann"):
    groups = _ladder_groups()
    ensemble = [p for ps in groups.values() for p in ps]
    platform = SimulationPlatform(ensemble, CATALOG)
    trainer = QLearningTrainer(
        platform,
        QLearningConfig(
            max_sweeps=60,
            episodes_per_sweep=8,
            seed=5,
            backend=backend,
            exploration=exploration,
        ),
    )
    return {
        error_type: trainer.train_type(error_type, processes)
        for error_type, processes in groups.items()
    }


def _result_snapshot(result, include_order=True):
    table = result.qtable
    return (
        result.sweeps_run,
        result.sweeps_to_convergence,
        result.converged,
        result.episodes,
        {
            (state, action): (
                table.value(state, action),
                table.visit_count(state, action),
            )
            for state in table.states()
            for action in table.action_names
        },
        # First-visit iteration order; meaningful only when both courses
        # trained live (a JSON round-trip legitimately re-sorts states).
        list(table.states()) if include_order else None,
    )


class TestEndToEndBitIdentical:
    @pytest.mark.parametrize("exploration", ["boltzmann", "epsilon"])
    def test_train_type_identical_across_backends(self, exploration):
        by_dict = _train("dict", exploration)
        by_array = _train("array", exploration)
        assert by_dict.keys() == by_array.keys()
        for error_type in by_dict:
            assert _result_snapshot(by_dict[error_type]) == _result_snapshot(
                by_array[error_type]
            ), f"backends diverged on {error_type} ({exploration})"

    def test_array_backend_is_default(self):
        assert QLearningConfig().backend == "array"
        result = _train("array")["error:Soft"]
        assert isinstance(result.qtable, ArrayQTable)


class TestParallelEngineBackends:
    def test_engine_outcomes_identical_across_backends(self):
        groups = _ladder_groups()
        ensemble = [p for ps in groups.values() for p in ps]
        snapshots = {}
        for backend in QTABLE_BACKENDS:
            engine = ParallelTrainingEngine(
                ensemble,
                CATALOG,
                qlearning=QLearningConfig(
                    max_sweeps=40, episodes_per_sweep=8, seed=3,
                    backend=backend,
                ),
                tree=SelectionTreeConfig(min_sweeps=10, check_interval=5),
                n_workers=1,
            )
            outcomes = engine.train(groups)
            snapshots[backend] = {
                error_type: (
                    _result_snapshot(outcome.training),
                    outcome.rules,
                    outcome.expected_cost,
                )
                for error_type, outcome in outcomes.items()
            }
        assert snapshots["dict"] == snapshots["array"]


class TestCheckpointCrossBackend:
    """A checkpoint written under one backend resumes under the other."""

    def _config(self, backend, checkpoint_dir, resume):
        return PipelineConfig(
            top_k_types=3,
            qlearning=QLearningConfig(
                max_sweeps=40, episodes_per_sweep=8, seed=3, backend=backend
            ),
            tree=SelectionTreeConfig(min_sweeps=10, check_interval=5),
            checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
            resume=resume,
        )

    def _fit(self, processes, backend, checkpoint_dir=None, resume=False):
        return RecoveryPolicyLearner(
            config=self._config(backend, checkpoint_dir, resume)
        ).fit(processes)

    def _learner_snapshot(self, learner):
        assert learner.training_result_ is not None
        return (
            {
                error_type: _result_snapshot(result, include_order=False)
                for error_type, result in (
                    learner.training_result_.per_type.items()
                )
            },
            learner.rules_,
        )

    @pytest.mark.parametrize(
        "write_backend,resume_backend",
        [("dict", "array"), ("array", "dict")],
    )
    def test_resume_across_backends(
        self, tmp_path, small_processes, write_backend, resume_backend
    ):
        checkpoint_dir = tmp_path / "ckpt"
        written = self._fit(
            small_processes, write_backend, checkpoint_dir, resume=False
        )
        resumed = self._fit(
            small_processes, resume_backend, checkpoint_dir, resume=True
        )
        # Every type must come from the checkpoint: the fingerprint
        # deliberately ignores the backend knob.
        assert resumed.outcomes_ is not None
        assert all(
            outcome.from_checkpoint
            for outcome in resumed.outcomes_.values()
        )
        # And the resumed run is bit-identical to a fresh run under the
        # resuming backend (which equals the writing run by the
        # end-to-end equivalence above).
        fresh = self._fit(small_processes, resume_backend)
        assert self._learner_snapshot(resumed) == self._learner_snapshot(
            fresh
        )
        assert self._learner_snapshot(resumed) == self._learner_snapshot(
            written
        )

    def test_backend_change_keeps_fingerprint(self, tmp_path):
        """Only the backend differs -> the same checkpoint fingerprint."""
        learners = {
            backend: RecoveryPolicyLearner(
                config=self._config(backend, tmp_path, resume=False)
            )
            for backend in QTABLE_BACKENDS
        }
        stores = {
            backend: learner._make_checkpoint_store()
            for backend, learner in learners.items()
        }
        assert stores["dict"].fingerprint == stores["array"].fingerprint

    def test_other_knobs_still_invalidate(self, tmp_path):
        base = RecoveryPolicyLearner(
            config=self._config("array", tmp_path, resume=False)
        )
        changed = RecoveryPolicyLearner(
            config=dataclasses.replace(
                self._config("array", tmp_path, resume=False),
                max_actions=7,
            )
        )
        assert (
            base._make_checkpoint_store().fingerprint
            != changed._make_checkpoint_store().fingerprint
        )
