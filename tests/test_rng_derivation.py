"""Property-based tests for per-error-type seed derivation.

:func:`repro.util.rng.derive_seed` is the keystone of the parallel
training engine's serial-equivalence guarantee: every ``(seed,
error_type)`` pair must map to the same child stream no matter which
process, worker or derivation order computes it, and distinct types must
get distinct streams.  Hypothesis drives the pair space; one test
crosses a real process boundary.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import derive_rng, derive_seed, make_rng

SEEDS = st.integers(min_value=-(2**63), max_value=2**63 - 1)
# Error-type names in the wild: machine-generated strings with
# separators, unicode, empty edge case.
NAMES = st.text(max_size=40)


class TestDeriveSeedProperties:
    @given(seed=SEEDS, name=NAMES)
    def test_derivation_is_deterministic(self, seed, name):
        assert derive_seed(seed, name) == derive_seed(seed, name)

    @given(seed=SEEDS, name=NAMES)
    def test_seed_is_a_valid_nonnegative_rng_seed(self, seed, name):
        child = derive_seed(seed, name)
        assert 0 <= child < 2**64
        np.random.default_rng(child)  # must not raise

    @given(seed=SEEDS, first=NAMES, second=NAMES)
    def test_distinct_names_give_distinct_streams(self, seed, first, second):
        if first == second:
            return
        assert derive_seed(seed, first) != derive_seed(seed, second)
        a = derive_rng(seed, first).random(4)
        b = derive_rng(seed, second).random(4)
        assert not np.array_equal(a, b)

    @given(name=NAMES, first=SEEDS, second=SEEDS)
    def test_distinct_seeds_give_distinct_streams(self, name, first, second):
        if first == second:
            return
        assert derive_seed(first, name) != derive_seed(second, name)

    @given(seed=SEEDS, name=NAMES)
    def test_derive_rng_matches_manual_seeding(self, seed, name):
        expected = np.random.default_rng(derive_seed(seed, name)).random(8)
        assert np.array_equal(derive_rng(seed, name).random(8), expected)

    @given(seed=SEEDS, names=st.lists(NAMES, max_size=8))
    def test_derivation_order_is_irrelevant(self, seed, names):
        forward = [derive_seed(seed, n) for n in names]
        backward = [derive_seed(seed, n) for n in reversed(names)]
        assert forward == list(reversed(backward))

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        digits=st.text(alphabet="0123456789", min_size=1, max_size=4),
        name=NAMES,
    )
    def test_seed_and_name_are_framed_not_concatenated(
        self, seed, digits, name
    ):
        """``(1, "2x")`` and ``(12, "x")`` style collisions must be
        impossible: moving digits between the seed and the name changes
        the derived seed."""
        shifted = int(f"{seed}{digits}")
        assert derive_seed(seed, digits + name) != derive_seed(shifted, name)


def _derive_in_child(pair):
    seed, name = pair
    return derive_seed(seed, name)


class TestCrossProcessStability:
    @pytest.mark.slow
    def test_child_process_derives_identical_seeds(self):
        """The exact property pool workers rely on: derivation in a
        separate interpreter (own PYTHONHASHSEED) matches the parent."""
        pairs = [
            (7, "error:ChunkserverDown"),
            (7, "error:LeaseExpired"),
            (0, ""),
            (-3, "unicode:é中"),
        ]
        parent = [derive_seed(s, n) for s, n in pairs]
        with ProcessPoolExecutor(max_workers=2) as pool:
            child = list(pool.map(_derive_in_child, pairs))
        assert child == parent

    def test_known_value_pinned(self):
        """Regression pin: changing the derivation scheme invalidates
        every existing checkpoint and seeded result, so it must be
        deliberate."""
        assert derive_seed(7, "error:Example") == 0xC3523368560E9B16


class TestTrainerIntegration:
    def test_make_rng_passthrough_still_holds(self):
        rng = make_rng(5)
        assert make_rng(rng) is rng

    @settings(max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_streams_for_paper_types_are_pairwise_distinct(self, seed):
        names = [f"error:Type{i}" for i in range(40)]
        seeds = [derive_seed(seed, n) for n in names]
        assert len(set(seeds)) == len(seeds)
