"""Tests for repro.recoverylog.io: round trips and error reporting."""

import pytest

from helpers import make_log, make_process
from repro.errors import ConfigurationError, LogFormatError
from repro.recoverylog.entry import EntryKind, LogEntry
from repro.recoverylog.io import (
    iter_log_chunks,
    iter_log_jsonl,
    iter_log_text,
    read_log,
    read_log_jsonl,
    read_log_text,
    resolve_log_format,
    sniff_log_format,
    write_log_jsonl,
    write_log_text,
)


@pytest.fixture
def sample_log():
    return make_log(
        [
            make_process(
                ["TRYNOP", "REBOOT"],
                machine="m-a",
                extra_symptoms=["warn:Mem"],
            ),
            make_process(["RMA"], machine="m-b", start=50_000.0),
        ]
    )


class TestTextFormat:
    def test_round_trip(self, tmp_path, sample_log):
        path = tmp_path / "log.tsv"
        count = write_log_text(sample_log, path)
        assert count == len(sample_log)
        loaded = read_log_text(path)
        assert loaded == sample_log

    def test_kind_inference(self, tmp_path, sample_log):
        path = tmp_path / "log.tsv"
        write_log_text(sample_log, path)
        loaded = read_log_text(path)
        kinds = {e.description: e.kind for e in loaded}
        assert kinds["TRYNOP"] is EntryKind.ACTION
        assert kinds["warn:Mem"] is EntryKind.SYMPTOM
        assert kinds["Success"] is EntryKind.SUCCESS

    def test_custom_action_names(self, tmp_path):
        path = tmp_path / "log.tsv"
        entries = [
            LogEntry.symptom(0.0, "m", "error:X"),
            LogEntry.action(1.0, "m", "FSCK"),
            LogEntry.success(2.0, "m"),
        ]
        write_log_text(entries, path)
        loaded = read_log_text(path, action_names={"FSCK"})
        assert loaded[1].is_action

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tm-only-two\n")
        with pytest.raises(LogFormatError, match="3 tab-separated"):
            read_log_text(path)

    def test_bad_timestamp(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("notatime\tm\terror:X\n")
        with pytest.raises(LogFormatError, match="bad timestamp"):
            read_log_text(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "log.tsv"
        path.write_text("\n1.000\tm\terror:X\n\n")
        assert len(read_log_text(path)) == 1


class TestJsonlFormat:
    def test_round_trip(self, tmp_path, sample_log):
        path = tmp_path / "log.jsonl"
        count = write_log_jsonl(sample_log, path)
        assert count == len(sample_log)
        assert read_log_jsonl(path) == sample_log

    def test_explicit_kinds_survive(self, tmp_path):
        # A symptom whose text collides with an action name still parses
        # as a symptom in JSONL (unlike the ambiguous text format).
        weird = [
            LogEntry.symptom(0.0, "m", "REBOOT"),
            LogEntry.success(1.0, "m"),
        ]
        path = tmp_path / "log.jsonl"
        write_log_jsonl(weird, path)
        loaded = read_log_jsonl(path)
        assert loaded[0].is_symptom

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0\n')
        with pytest.raises(LogFormatError, match="bad JSON"):
            read_log_jsonl(path)

    def test_missing_field_reports_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0, "machine": "m"}\n')
        with pytest.raises(LogFormatError, match="bad record"):
            read_log_jsonl(path)


class TestStreamingReaders:
    """Iterator readers: same entries, same path:line diagnostics."""

    def test_iterators_match_eager(self, tmp_path, sample_log):
        text_path = tmp_path / "log.tsv"
        jsonl_path = tmp_path / "log.jsonl"
        write_log_text(sample_log, text_path)
        write_log_jsonl(sample_log, jsonl_path)
        assert list(iter_log_text(text_path)) == list(sample_log)
        assert list(iter_log_jsonl(jsonl_path)) == list(sample_log)

    @pytest.mark.parametrize("reader", [read_log_text, iter_log_text])
    def test_text_bad_timestamp_reports_path_and_line(
        self, tmp_path, reader
    ):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tm\terror:X\n\nnotatime\tm\terror:Y\n")
        with pytest.raises(LogFormatError, match="bad timestamp") as info:
            list(reader(path))
        assert f"{path}:3:" in str(info.value)

    @pytest.mark.parametrize("reader", [read_log_text, iter_log_text])
    def test_text_bad_field_count_reports_path_and_line(
        self, tmp_path, reader
    ):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tm\terror:X\n2.0\tm-only-two\n")
        with pytest.raises(
            LogFormatError, match="3 tab-separated"
        ) as info:
            list(reader(path))
        assert f"{path}:2:" in str(info.value)

    @pytest.mark.parametrize("reader", [read_log_jsonl, iter_log_jsonl])
    def test_jsonl_bad_json_reports_path_and_line(self, tmp_path, reader):
        path = tmp_path / "bad.jsonl"
        good = '{"time":1.0,"machine":"m","kind":"symptom",'
        good += '"description":"error:X"}\n'
        path.write_text(good + '{"time": 1.0\n')
        with pytest.raises(LogFormatError, match="bad JSON") as info:
            list(reader(path))
        assert f"{path}:2:" in str(info.value)

    @pytest.mark.parametrize("reader", [read_log_jsonl, iter_log_jsonl])
    def test_jsonl_missing_key_reports_path_and_line(
        self, tmp_path, reader
    ):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0, "machine": "m"}\n')
        with pytest.raises(LogFormatError, match="bad record") as info:
            list(reader(path))
        assert f"{path}:1:" in str(info.value)

    def test_iterator_is_lazy_until_bad_line(self, tmp_path):
        # Entries before the defect are yielded; the error surfaces only
        # when the stream reaches the bad line.
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tm\terror:X\nnotatime\tm\terror:Y\n")
        iterator = iter_log_text(path)
        first = next(iterator)
        assert first.description == "error:X"
        with pytest.raises(LogFormatError, match="bad timestamp"):
            next(iterator)


class TestSniffing:
    def test_jsonl_content_with_log_suffix(self, tmp_path, sample_log):
        # Regression: operations logs carry .log whatever their syntax;
        # format detection must follow content, not suffix.
        path = tmp_path / "cluster.log"
        write_log_jsonl(sample_log, path)
        assert sniff_log_format(path) == "jsonl"
        assert read_log(path) == sample_log

    def test_text_content_with_json_suffix(self, tmp_path, sample_log):
        path = tmp_path / "cluster.json"
        write_log_text(sample_log, path)
        assert sniff_log_format(path) == "text"
        assert read_log(path) == sample_log

    def test_leading_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "padded.log"
        path.write_text('\n\n{"time":1.0,"machine":"m",'
                        '"kind":"success","description":"Success"}\n')
        assert sniff_log_format(path) == "jsonl"

    def test_empty_file_defaults_to_text(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_text("")
        assert sniff_log_format(path) == "text"
        assert len(read_log(path)) == 0

    def test_explicit_format_skips_sniffing(self, tmp_path, sample_log):
        path = tmp_path / "cluster.log"
        write_log_jsonl(sample_log, path)
        assert resolve_log_format(path, "jsonl") == "jsonl"
        with pytest.raises(LogFormatError):
            read_log(path, log_format="text")

    def test_invalid_format_rejected(self, tmp_path):
        path = tmp_path / "x.log"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="log format"):
            resolve_log_format(path, "xml")


class TestBufferedWriters:
    @pytest.mark.parametrize(
        "writer,reader",
        [(write_log_text, read_log_text), (write_log_jsonl, read_log_jsonl)],
    )
    def test_buffering_does_not_change_bytes(
        self, tmp_path, sample_log, writer, reader
    ):
        buffered = tmp_path / "buffered.out"
        unbuffered = tmp_path / "unbuffered.out"
        writer(sample_log, buffered)
        writer(sample_log, unbuffered, buffer_entries=1)
        assert buffered.read_bytes() == unbuffered.read_bytes()
        assert reader(buffered) == sample_log

    @pytest.mark.parametrize("writer", [write_log_text, write_log_jsonl])
    def test_partial_final_buffer_flushed(self, tmp_path, sample_log, writer):
        path = tmp_path / "log.out"
        count = writer(sample_log, path, buffer_entries=4)
        assert count == len(sample_log)
        assert len(path.read_text().splitlines()) == len(sample_log)

    @pytest.mark.parametrize("writer", [write_log_text, write_log_jsonl])
    def test_bad_buffer_size_rejected(self, tmp_path, sample_log, writer):
        with pytest.raises(ConfigurationError, match="buffer_entries"):
            writer(sample_log, tmp_path / "x.out", buffer_entries=0)


class TestChunkedReads:
    def test_chunks_concatenate_to_full_log(self, tmp_path, sample_log):
        path = tmp_path / "log.jsonl"
        write_log_jsonl(sample_log, path)
        chunks = list(iter_log_chunks(path, chunk_size=3))
        assert all(len(chunk) <= 3 for chunk in chunks)
        flattened = [entry for chunk in chunks for entry in chunk]
        assert flattened == list(sample_log)

    def test_single_chunk_when_size_exceeds_log(self, tmp_path, sample_log):
        path = tmp_path / "log.jsonl"
        write_log_jsonl(sample_log, path)
        chunks = list(iter_log_chunks(path, chunk_size=10_000))
        assert len(chunks) == 1

    def test_bad_chunk_size_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="chunk_size"):
            list(iter_log_chunks(path, chunk_size=0))
