"""Tests for repro.recoverylog.io: round trips and error reporting."""

import pytest

from helpers import make_log, make_process
from repro.errors import LogFormatError
from repro.recoverylog.entry import EntryKind, LogEntry
from repro.recoverylog.io import (
    read_log_jsonl,
    read_log_text,
    write_log_jsonl,
    write_log_text,
)


@pytest.fixture
def sample_log():
    return make_log(
        [
            make_process(
                ["TRYNOP", "REBOOT"],
                machine="m-a",
                extra_symptoms=["warn:Mem"],
            ),
            make_process(["RMA"], machine="m-b", start=50_000.0),
        ]
    )


class TestTextFormat:
    def test_round_trip(self, tmp_path, sample_log):
        path = tmp_path / "log.tsv"
        count = write_log_text(sample_log, path)
        assert count == len(sample_log)
        loaded = read_log_text(path)
        assert loaded == sample_log

    def test_kind_inference(self, tmp_path, sample_log):
        path = tmp_path / "log.tsv"
        write_log_text(sample_log, path)
        loaded = read_log_text(path)
        kinds = {e.description: e.kind for e in loaded}
        assert kinds["TRYNOP"] is EntryKind.ACTION
        assert kinds["warn:Mem"] is EntryKind.SYMPTOM
        assert kinds["Success"] is EntryKind.SUCCESS

    def test_custom_action_names(self, tmp_path):
        path = tmp_path / "log.tsv"
        entries = [
            LogEntry.symptom(0.0, "m", "error:X"),
            LogEntry.action(1.0, "m", "FSCK"),
            LogEntry.success(2.0, "m"),
        ]
        write_log_text(entries, path)
        loaded = read_log_text(path, action_names={"FSCK"})
        assert loaded[1].is_action

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tm-only-two\n")
        with pytest.raises(LogFormatError, match="3 tab-separated"):
            read_log_text(path)

    def test_bad_timestamp(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("notatime\tm\terror:X\n")
        with pytest.raises(LogFormatError, match="bad timestamp"):
            read_log_text(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "log.tsv"
        path.write_text("\n1.000\tm\terror:X\n\n")
        assert len(read_log_text(path)) == 1


class TestJsonlFormat:
    def test_round_trip(self, tmp_path, sample_log):
        path = tmp_path / "log.jsonl"
        count = write_log_jsonl(sample_log, path)
        assert count == len(sample_log)
        assert read_log_jsonl(path) == sample_log

    def test_explicit_kinds_survive(self, tmp_path):
        # A symptom whose text collides with an action name still parses
        # as a symptom in JSONL (unlike the ambiguous text format).
        weird = [
            LogEntry.symptom(0.0, "m", "REBOOT"),
            LogEntry.success(1.0, "m"),
        ]
        path = tmp_path / "log.jsonl"
        write_log_jsonl(weird, path)
        loaded = read_log_jsonl(path)
        assert loaded[0].is_symptom

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0\n')
        with pytest.raises(LogFormatError, match="bad JSON"):
            read_log_jsonl(path)

    def test_missing_field_reports_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0, "machine": "m"}\n')
        with pytest.raises(LogFormatError, match="bad record"):
            read_log_jsonl(path)
