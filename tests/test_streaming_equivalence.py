"""Differential pinning: the streaming pipeline == the in-memory reference.

Every result the streaming path can produce — completed processes,
incomplete buffers, orphans, co-occurrence counts, dependence values,
clusters, noise fraction, coverage curve, m-patterns — must equal what
the eager pipeline computes on the same entries, and none of it may
depend on where chunk boundaries fall.
"""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.clustering import coverage_curve
from repro.mining.dependence import SymptomCooccurrence
from repro.mining.mpattern import mine_m_patterns
from repro.mining.noise import filter_noise
from repro.mining.streaming import StreamingMiner, mine_log_streaming
from repro.recoverylog.io import write_log_jsonl, write_log_text
from repro.recoverylog.process import segment_log
from repro.recoverylog.stream import StreamingSegmenter
from repro.tracegen.stream import SyntheticStreamConfig, iter_synthetic_log

MINP = 0.5
CURVE_MINPS = (0.1, 0.3, 0.5, 0.7, 1.0)

#: Dense, noisy little workload: overlapping machines, frequent faults,
#: and a high noise rate so multi-cluster transactions actually occur.
_CONFIG = SyntheticStreamConfig(
    machines=40,
    seed=3,
    error_types=6,
    noise_probability=0.25,
    mean_time_between_failures=3_600.0,
)


@pytest.fixture(scope="module")
def entries():
    return list(iter_synthetic_log(_CONFIG, total_entries=4_000))


@pytest.fixture(scope="module")
def eager(entries):
    return segment_log(entries)


@pytest.fixture(scope="module")
def streamed(entries):
    miner = StreamingMiner()
    processes = list(miner.segmenter.feed_many(entries))
    for process in processes:
        miner.observe(process)
    return miner, processes


def _by_start(processes):
    return sorted(processes, key=lambda p: (p.start_time, p.machine))


class TestSegmentationEquivalence:
    def test_same_completed_processes(self, eager, streamed):
        _, processes = streamed
        assert _by_start(processes) == list(eager.processes)

    def test_same_incomplete_buffers(self, eager, streamed):
        miner, _ = streamed
        assert miner.segmenter.pending() == eager.incomplete

    def test_orphans_match_on_truncated_log(self, entries):
        # A log window that opens mid-stream starts with actions and
        # successes whose symptoms fell outside the window.
        window = entries[len(entries) // 2:]
        eager = segment_log(window)
        segmenter = StreamingSegmenter()
        processes = list(segmenter.feed_many(window))
        assert eager.orphaned  # the scenario actually has orphans
        key = lambda e: e.sort_key  # noqa: E731
        assert sorted(segmenter.orphans, key=key) == sorted(
            eager.orphaned, key=key
        )
        assert _by_start(processes) == list(eager.processes)
        assert segmenter.pending() == eager.incomplete


class TestMiningEquivalence:
    def test_cooccurrence_counts_identical(self, eager, streamed):
        miner, _ = streamed
        reference = SymptomCooccurrence.from_transactions(
            p.symptom_set for p in eager.processes
        )
        cooc = miner.cooccurrence
        assert cooc.items == reference.items
        assert cooc.transaction_count == reference.transaction_count
        for item in reference.items:
            assert cooc.count(item) == reference.count(item)
        for a, b in combinations(reference.items, 2):
            assert cooc.pair_count(a, b) == reference.pair_count(a, b)
            assert cooc.pair_dependence(a, b) == reference.pair_dependence(
                a, b
            )

    def test_clusters_identical(self, eager, streamed):
        miner, _ = streamed
        reference = filter_noise(eager.processes, MINP)
        assert (
            miner.clustering(MINP).clusters
            == reference.clustering.clusters
        )

    def test_noise_fraction_bit_identical(self, eager, streamed):
        miner, _ = streamed
        reference = filter_noise(eager.processes, MINP)
        assert reference.noisy  # the workload actually produces noise
        assert miner.noise_fraction(MINP) == reference.noise_fraction

    def test_coverage_curve_bit_identical(self, eager, streamed):
        miner, _ = streamed
        assert miner.coverage_curve(CURVE_MINPS) == coverage_curve(
            eager.processes, minps=CURVE_MINPS
        )

    def test_m_patterns_identical(self, eager, streamed):
        miner, _ = streamed
        reference = mine_m_patterns(
            [p.symptom_set for p in eager.processes], MINP
        )
        assert sorted(miner.m_patterns(MINP), key=sorted) == sorted(
            reference, key=sorted
        )

    def test_mean_downtime_matches(self, eager, streamed):
        miner, _ = streamed
        downtimes = [p.downtime for p in eager.processes]
        assert miner.process_count == len(downtimes)
        assert miner.mean_downtime == pytest.approx(
            sum(downtimes) / len(downtimes)
        )


class TestFileEquivalence:
    @pytest.mark.parametrize("writer,suffix", [
        (write_log_jsonl, "log.jsonl"),
        (write_log_text, "log.txt"),
    ])
    def test_mine_file_matches_eager(
        self, tmp_path, entries, eager, writer, suffix
    ):
        path = tmp_path / suffix
        writer(entries, path)
        miner, summary = mine_log_streaming(str(path), MINP)
        reference = filter_noise(eager.processes, MINP)
        assert summary.entry_count == len(entries)
        assert summary.process_count == len(eager.processes)
        assert summary.cluster_count == reference.clustering.cluster_count()
        assert summary.noise_fraction == reference.noise_fraction
        assert summary.incomplete_count == len(eager.incomplete)


class TestChunkInvariance:
    """Where chunk boundaries fall must never change any output."""

    @pytest.fixture(scope="class")
    def reference(self, entries):
        miner = StreamingMiner()
        miner.feed(entries)
        return miner.result(MINP), miner.clustering(MINP).clusters

    @given(chunk_size=st.integers(min_value=1, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_any_chunk_size_same_result(self, entries, reference, chunk_size):
        miner = StreamingMiner()
        miner.feed_chunks(
            entries[start:start + chunk_size]
            for start in range(0, len(entries), chunk_size)
        )
        assert miner.result(MINP) == reference[0]
        assert miner.clustering(MINP).clusters == reference[1]

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_uneven_boundaries(self, entries, reference, data):
        cuts = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(entries)),
                max_size=8,
            ).map(sorted)
        )
        bounds = [0, *cuts, len(entries)]
        miner = StreamingMiner()
        miner.feed_chunks(
            entries[a:b] for a, b in zip(bounds, bounds[1:])
        )
        assert miner.result(MINP) == reference[0]
        assert miner.clustering(MINP).clusters == reference[1]

    @pytest.fixture(scope="class")
    def log_file(self, entries, tmp_path_factory):
        path = tmp_path_factory.mktemp("chunks") / "log.jsonl"
        write_log_jsonl(entries, path)
        return str(path)

    @given(chunk_size=st.integers(min_value=1, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_file_chunk_size_invariant(
        self, log_file, reference, chunk_size
    ):
        _miner, summary = mine_log_streaming(
            log_file, MINP, chunk_size=chunk_size
        )
        assert summary == reference[0]


class TestSimulatorLogEquivalence:
    """The cluster simulator's log mines identically via either path."""

    def test_small_trace_round_trip(self, small_trace):
        entries = sorted(small_trace.log, key=lambda e: e.sort_key)
        eager = segment_log(entries)
        miner = StreamingMiner()
        miner.feed(entries)
        reference = filter_noise(eager.processes, MINP)
        streamed = miner.result(MINP)
        assert streamed.process_count == len(eager.processes)
        assert streamed.cluster_count == reference.clustering.cluster_count()
        assert streamed.noise_fraction == reference.noise_fraction
