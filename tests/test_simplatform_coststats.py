"""Tests for cost statistics with shrinkage."""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.errors import SimulationError
from repro.simplatform.coststats import CostStatistics

CATALOG = default_catalog()


class TestBasicAverages:
    def test_success_cost_from_data(self):
        processes = ladder_processes(
            "error:A", [(["REBOOT"], 10)], step=500.0
        )
        stats = CostStatistics.from_processes(
            processes, CATALOG, shrinkage=0.0
        )
        assert stats.success_cost("error:A", "REBOOT") == pytest.approx(500.0)

    def test_failure_cost_from_data(self):
        processes = ladder_processes(
            "error:A", [(["TRYNOP", "REBOOT"], 10)], step=700.0
        )
        stats = CostStatistics.from_processes(
            processes, CATALOG, shrinkage=0.0
        )
        assert stats.failure_cost("error:A", "TRYNOP") == pytest.approx(700.0)

    def test_initial_delay_from_data(self):
        processes = ladder_processes("error:A", [(["REBOOT"], 4)])
        stats = CostStatistics.from_processes(processes, CATALOG)
        assert stats.initial_delay("error:A") == pytest.approx(60.0)

    def test_initial_delay_global_fallback(self):
        processes = ladder_processes("error:A", [(["REBOOT"], 4)])
        stats = CostStatistics.from_processes(processes, CATALOG)
        assert stats.initial_delay("error:unseen") == pytest.approx(60.0)

    def test_nominal_fallback_when_action_unseen(self):
        processes = ladder_processes("error:A", [(["REBOOT"], 4)])
        stats = CostStatistics.from_processes(processes, CATALOG)
        assert stats.success_cost("error:A", "RMA") == pytest.approx(
            CATALOG["RMA"].cost_model.mean
        )

    def test_observed_pairs(self):
        processes = ladder_processes("error:A", [(["TRYNOP", "REBOOT"], 2)])
        stats = CostStatistics.from_processes(processes, CATALOG)
        assert ("error:A", "TRYNOP") in stats.observed_pairs()
        assert ("error:A", "REBOOT") in stats.observed_pairs()


class TestShrinkage:
    def _stats(self, shrinkage):
        # error:A has many REBOOT successes at 1000s; error:B has one at
        # 5000s.  Shrinkage pulls B's estimate toward the global mean.
        processes = ladder_processes(
            "error:A", [(["REBOOT"], 20)], step=1000.0
        ) + ladder_processes(
            "error:B", [(["REBOOT"], 1)], machine_prefix="n", step=5000.0
        )
        return CostStatistics.from_processes(
            processes, CATALOG, shrinkage=shrinkage
        )

    def test_zero_shrinkage_uses_raw_local_mean(self):
        stats = self._stats(0.0)
        assert stats.success_cost("error:B", "REBOOT") == pytest.approx(5000.0)

    def test_shrinkage_pulls_sparse_types_toward_global(self):
        stats = self._stats(5.0)
        estimate = stats.success_cost("error:B", "REBOOT")
        global_mean = (20 * 1000.0 + 5000.0) / 21
        assert global_mean < estimate < 5000.0

    def test_well_observed_types_barely_move(self):
        raw = self._stats(0.0).success_cost("error:A", "REBOOT")
        shrunk = self._stats(5.0).success_cost("error:A", "REBOOT")
        assert abs(shrunk - raw) / raw < 0.25

    def test_negative_shrinkage_rejected(self):
        with pytest.raises(SimulationError):
            CostStatistics(CATALOG, shrinkage=-1.0)


class TestZeroActionProcesses:
    def test_self_healed_process_contributes_nothing(self):
        # A process with no actions (symptom then success) is legal input.
        from repro.recoverylog.entry import LogEntry
        from repro.recoverylog.process import RecoveryProcess

        process = RecoveryProcess(
            "m",
            (
                LogEntry.symptom(0.0, "m", "error:A"),
                LogEntry.success(100.0, "m"),
            ),
        )
        stats = CostStatistics.from_processes([process], CATALOG)
        assert stats.observed_pairs() == ()
