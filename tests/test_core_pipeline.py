"""Tests for the end-to-end RecoveryPolicyLearner pipeline."""

import pytest

from repro.actions import default_catalog
from repro.core import PipelineConfig, RecoveryPolicyLearner
from repro.errors import ConfigurationError, NotTrainedError, TrainingError
from repro.evaluation import time_ordered_split
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig


def fast_config(**overrides):
    defaults = dict(
        top_k_types=6,
        qlearning=QLearningConfig(max_sweeps=120, episodes_per_sweep=16),
        tree=SelectionTreeConfig(min_sweeps=30, check_interval=15),
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def fitted(small_processes):
    train, _test = time_ordered_split(small_processes, 0.5)
    learner = RecoveryPolicyLearner(config=fast_config())
    return learner.fit(train)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"minp": 0.0},
            {"minp": 1.5},
            {"top_k_types": 0},
            {"min_processes_per_type": 0},
            {"max_actions": 1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PipelineConfig(**kwargs)


class TestFit:
    def test_fit_produces_rules_and_registry(self, fitted):
        assert fitted.rules_
        assert fitted.registry_ is not None
        assert len(fitted.registry_) <= 6
        assert fitted.training_result_ is not None

    def test_fit_accepts_recovery_log(self, small_trace):
        learner = RecoveryPolicyLearner(
            config=fast_config(top_k_types=3)
        )
        learner.fit(small_trace.log)
        assert learner.rules_

    def test_noise_filter_recorded(self, fitted):
        assert fitted.noise_result_ is not None
        assert 0.0 <= fitted.noise_result_.noise_fraction < 0.2

    def test_fit_empty_rejected(self):
        with pytest.raises(TrainingError):
            RecoveryPolicyLearner().fit([])

    def test_thin_types_skipped(self, small_processes):
        train, _ = time_ordered_split(small_processes, 0.5)
        learner = RecoveryPolicyLearner(
            config=fast_config(min_processes_per_type=10**6)
        )
        with pytest.raises(TrainingError, match="enough training"):
            learner.fit(train)

    def test_greedy_extraction_mode(self, small_processes):
        train, _ = time_ordered_split(small_processes, 0.5)
        learner = RecoveryPolicyLearner(
            config=fast_config(top_k_types=3, use_selection_tree=False)
        )
        learner.fit(train)
        assert learner.rules_


class TestPolicies:
    def test_policies_require_fit(self):
        learner = RecoveryPolicyLearner()
        with pytest.raises(NotTrainedError):
            learner.trained_policy()
        with pytest.raises(NotTrainedError):
            learner.hybrid_policy()
        with pytest.raises(NotTrainedError):
            learner.make_evaluator([])

    def test_trained_policy_covers_registry_types(self, fitted):
        policy = fitted.trained_policy()
        trained_types = set(policy.error_types())
        registry_types = set(fitted.registry_.names)
        assert trained_types <= registry_types
        assert trained_types  # at least one type learned

    def test_hybrid_policy_default_fallback(self, fitted):
        hybrid = fitted.hybrid_policy()
        assert hybrid.fallback.name == "user-defined"

    def test_hybrid_policy_custom_fallback(self, fitted):
        from repro.policies import AlwaysStrongestPolicy

        hybrid = fitted.hybrid_policy(
            AlwaysStrongestPolicy(default_catalog())
        )
        assert hybrid.fallback.name == "always-strongest"


class TestEvaluation:
    def test_end_to_end_improvement(self, small_processes):
        train, test = time_ordered_split(small_processes, 0.5)
        learner = RecoveryPolicyLearner(config=fast_config())
        learner.fit(train)
        evaluator = learner.make_evaluator(test, filter_test_noise=False)
        trained = evaluator.evaluate(learner.trained_policy())
        hybrid = evaluator.evaluate(learner.hybrid_policy())
        user = evaluator.evaluate(
            __import__(
                "repro.policies", fromlist=["UserDefinedPolicy"]
            ).UserDefinedPolicy(default_catalog())
        )
        # The log's own policy is the reference point.
        assert user.overall_relative_cost == pytest.approx(1.0)
        # The trained policy must not be worse overall, and the small
        # workload pins a reimage-needing type at rank 1, so it should
        # actually save time.
        assert trained.overall_relative_cost < 1.0
        assert hybrid.overall_coverage == 1.0
        assert hybrid.overall_relative_cost <= 1.02

    def test_evaluator_filters_test_noise_by_default(self, fitted, small_processes):
        _train, test = time_ordered_split(small_processes, 0.5)
        filtered = fitted.make_evaluator(test)
        unfiltered = fitted.make_evaluator(test, filter_test_noise=False)
        assert len(filtered.platform.processes) <= len(
            unfiltered.platform.processes
        )
