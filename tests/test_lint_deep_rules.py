"""Golden fixture tests for the whole-program rules R7-R10.

Each bad case is a *multi-module* fixture whose violation is only
visible across a function/module boundary; each good twin encodes the
sanctioned pattern and must stay silent.  The suppression fixture pins
that inline ``repro-lint: disable`` comments silence deep findings
exactly like syntactic ones.
"""

from pathlib import Path

from repro.analysis import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
DEEP = FIXTURES / "deep"


def lint_deep(case, **kwargs):
    return run_lint([DEEP / case], root=FIXTURES, deep=True, **kwargs)


def by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestR7ProcessBoundary:
    def test_bad_pair_fires_at_the_caller(self):
        report = lint_deep("r7_bad")
        assert {f.rule for f in report.findings} == {"R7"}
        (finding,) = by_rule(report, "R7")
        # The generator is created in the train module; the finding
        # anchors where it is handed to the dispatcher that forwards
        # it into the pool.
        assert finding.path == "deep/r7_bad/r7_bad_train.py"
        assert finding.line == 15
        assert "process/serialization boundary" in finding.message
        assert "make_rng" in finding.message

    def test_good_pair_clean(self):
        assert lint_deep("r7_good").clean


class TestR8ChannelAliasing:
    def test_retention_aliasing_fires_at_creation_site(self):
        report = lint_deep("r8_bad")
        policy = [
            f
            for f in by_rule(report, "R8")
            if f.path.endswith("r8_bad_policy.py")
        ]
        (finding,) = policy
        assert finding.line == 8  # the make_rng(...) line
        assert "action_rng" in finding.message
        assert "noise_rng" in finding.message

    def test_channel_aliasing_fires_at_both_consumers(self):
        report = lint_deep("r8_bad")
        channel = [
            f for f in by_rule(report, "R8") if "'episode'" in f.message
        ]
        assert {f.path for f in channel} == {
            "deep/r8_bad/r8_bad_streams.py",
            "deep/r8_bad/r8_bad_consumer.py",
        }
        for finding in channel:
            assert "2 functions" in finding.message

    def test_good_pair_clean(self):
        assert lint_deep("r8_good").clean


class TestR9UnorderedIteration:
    def test_bad_trio_fires_on_the_loop_draw(self):
        report = lint_deep("r9_bad")
        assert {f.rule for f in report.findings} == {"R9"}
        (finding,) = by_rule(report, "R9")
        assert finding.path == "deep/r9_bad/r9_bad_driver.py"
        assert finding.line == 16  # the inject_error(process, rng) line
        assert "unordered" in finding.message
        assert "inject_error" in finding.message

    def test_good_trio_clean(self):
        # sorted() sanitizes the order; per-item derive_rng means no
        # generator state survives an iteration.
        assert lint_deep("r9_good").clean


class TestR10OrderIntoOutput:
    def test_bad_pair_fires_where_the_set_enters_the_writer(self):
        report = lint_deep("r10_bad")
        assert {f.rule for f in report.findings} == {"R10"}
        (finding,) = by_rule(report, "R10")
        assert finding.path == "deep/r10_bad/r10_bad_collect.py"
        assert finding.line == 8
        assert "set comprehension" in finding.message
        assert "write_summary" in finding.message

    def test_good_pair_clean(self):
        assert lint_deep("r10_good").clean


class TestDeepSuppressions:
    def test_inline_disables_silence_deep_findings(self):
        report = lint_deep("suppressed")
        assert report.clean
        assert sorted(f.rule for f in report.suppressed) == [
            "R10",
            "R7",
            "R8",
            "R9",
        ]

    def test_suppressions_carry_reasons(self):
        report = lint_deep("suppressed")
        # identity: the findings were real before suppression
        assert all(
            f.path == "deep/suppressed/deep_suppressed_mix.py"
            for f in report.suppressed
        )


class TestShallowRunsIgnoreDeepRules:
    def test_bad_fixtures_silent_without_deep(self):
        for case in ("r7_bad", "r8_bad", "r9_bad", "r10_bad"):
            report = run_lint([DEEP / case], root=FIXTURES)
            deep_findings = [
                f
                for f in report.findings
                if f.rule in {"R7", "R8", "R9", "R10"}
            ]
            assert deep_findings == []

    def test_deep_run_is_deterministic(self):
        first = lint_deep("r8_bad")
        second = lint_deep("r8_bad")
        assert first.findings == second.findings
