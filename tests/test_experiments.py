"""Tests for the experiment drivers, on a miniature scenario.

These exercise every figure driver end to end with a small workload so
the full benchmark-scale runs stay in the benchmark suite.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.experiments.ablations import ablation_hypotheses
from repro.experiments.bundle import train_fraction
from repro.experiments.figures import (
    fig3_symptom_sets,
    fig5_error_type_counts,
    fig6_downtime,
    fig7_platform_validation,
    table1_example_process,
)
from repro.experiments.scenario import build_scenario, default_scenario
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig
from repro.tracegen.workload import small_config


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(small_config(seed=13), top_k=8)


class TestScenario:
    def test_artifacts_present(self, scenario):
        assert scenario.processes
        assert scenario.clean
        assert len(scenario.registry) <= 8
        assert scenario.user_policy.name == "user-defined"

    def test_ranks_map(self, scenario):
        ranks = scenario.ranks
        assert set(ranks.values()) == set(range(1, len(scenario.registry) + 1))

    def test_default_scenario_memoized(self):
        # Only checks the cache identity, not the heavy default build.
        from repro.experiments import scenario as scenario_module

        scenario_module._DEFAULT_CACHE[999] = "sentinel"
        assert default_scenario(999) == "sentinel"
        del scenario_module._DEFAULT_CACHE[999]


class TestDataFigures:
    def test_table1(self, scenario):
        result = table1_example_process(scenario)
        text = result.render()
        assert "Success" in text
        assert len(result.process.actions) >= 2

    def test_fig3_curve_monotone(self, scenario):
        result = fig3_symptom_sets(scenario, minps=(0.1, 0.5, 1.0))
        values = [result.curve[m] for m in sorted(result.curve)]
        assert values[0] >= values[-1]
        assert "Figure 3" in result.render()

    def test_fig5_counts_descend_with_rank(self, scenario):
        result = fig5_error_type_counts(scenario)
        counts = [result.series[r] for r in sorted(result.series)]
        assert counts == sorted(counts, reverse=True)

    def test_fig6_downtime_positive(self, scenario):
        result = fig6_downtime(scenario)
        assert all(v > 0 for v in result.series.values())

    def test_fig7_validation(self, scenario):
        result = fig7_platform_validation(scenario)
        assert set(result.report.relative_cost) == set(
            scenario.registry.names
        )
        assert result.report.mean_deviation < 0.3


class TestBundles:
    def test_train_fraction_produces_three_evaluations(self, scenario):
        config = PipelineConfig(
            top_k_types=6,
            qlearning=QLearningConfig(max_sweeps=100, episodes_per_sweep=16),
            tree=SelectionTreeConfig(min_sweeps=30, check_interval=15),
        )
        bundle = train_fraction(
            scenario, 0.5, config=config, use_cache=False
        )
        assert bundle.user_eval.overall_relative_cost == pytest.approx(1.0)
        assert bundle.trained_eval.overall_relative_cost <= 1.0
        assert bundle.hybrid_eval.overall_coverage == 1.0

    def test_cache_reuses_default_config_runs(self, scenario, monkeypatch):
        from repro.experiments import bundle as bundle_module

        calls = {"count": 0}
        original = bundle_module.RecoveryPolicyLearner.fit

        def counting_fit(self, source):
            calls["count"] += 1
            return original(self, source)

        monkeypatch.setattr(
            bundle_module.RecoveryPolicyLearner, "fit", counting_fit
        )
        bundle_module._CACHE.clear()
        try:
            config_free_scenario = scenario
            # First call trains, second hits the cache.
            train_fraction(config_free_scenario, 0.7)
            train_fraction(config_free_scenario, 0.7)
            assert calls["count"] == 1
        finally:
            bundle_module._CACHE.clear()


class TestAblations:
    def test_hypotheses_ablation_shows_unsoundness_of_naive_rule(
        self, scenario
    ):
        result = ablation_hypotheses(scenario)
        paper = result.mean_ratio["last+stronger (paper)"]
        naive = result.mean_ratio["last action only"]
        assert paper == pytest.approx(1.0, abs=1e-9)
        assert naive < 1.0
        assert result.early_finish_fraction["last action only"] > 0
        assert "Ablation" in result.render()
