"""Tests for end-to-end trace generation and calibration."""

from repro.tracegen.calibration import PAPER_TARGETS, calibrate
from repro.tracegen.generator import generate_trace
from repro.tracegen.workload import (
    default_config,
    paper_scale_config,
    small_config,
)


class TestTraceGeneration:
    def test_trace_carries_provenance(self, small_trace):
        assert small_trace.policy_name == "user-defined"
        assert len(small_trace.fault_catalog) == 12

    def test_reproducible_for_seed(self):
        a = generate_trace(small_config(seed=21))
        b = generate_trace(small_config(seed=21))
        assert a.log == b.log

    def test_processes_well_formed(self, small_processes):
        assert len(small_processes) > 50
        for process in small_processes:
            assert process.downtime > 0
            assert process.actions

    def test_error_types_come_from_catalog(self, small_trace, small_processes):
        primaries = {
            f.primary_symptom for f in small_trace.fault_catalog
        }
        observed = {p.error_type for p in small_processes}
        assert observed <= primaries


class TestCalibration:
    def test_report_fields(self, small_processes):
        report = calibrate(small_processes)
        assert report.process_count == len(small_processes)
        assert report.error_type_count <= 12
        assert report.total_downtime > 0

    def test_default_scale_matches_paper_marginals(self):
        trace = generate_trace(default_config(seed=7))
        report = calibrate(trace.log.to_processes())
        assert report.error_type_count >= 85
        assert abs(report.top40_coverage - PAPER_TARGETS["top40_coverage"]) < 0.01
        assert report.process_count > 5_000

    def test_render_mentions_paper_targets(self, small_processes):
        text = calibrate(small_processes).render()
        assert "top-40 coverage" in text
        assert "97" in text

    def test_empty_ensemble(self):
        report = calibrate([])
        assert report.process_count == 0
        assert report.median_type_count == 0.0


class TestConfigs:
    def test_paper_scale_is_larger(self):
        small = default_config()
        big = paper_scale_config()
        assert (
            big.cluster.machine_count > small.cluster.machine_count
        )

    def test_seed_threading(self):
        assert default_config(seed=99).seed == 99
