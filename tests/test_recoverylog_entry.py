"""Tests for repro.recoverylog.entry."""

import pytest

from repro.errors import LogFormatError
from repro.recoverylog.entry import EntryKind, LogEntry


class TestConstruction:
    def test_symptom_factory(self):
        entry = LogEntry.symptom(1.0, "m-1", "error:Disk")
        assert entry.kind is EntryKind.SYMPTOM
        assert entry.is_symptom and not entry.is_action

    def test_action_factory(self):
        entry = LogEntry.action(2.0, "m-1", "REBOOT")
        assert entry.is_action

    def test_success_factory(self):
        entry = LogEntry.success(3.0, "m-1")
        assert entry.is_success
        assert entry.description == "Success"

    def test_negative_time_rejected(self):
        with pytest.raises(LogFormatError):
            LogEntry.symptom(-1.0, "m", "error:X")

    def test_empty_machine_rejected(self):
        with pytest.raises(LogFormatError):
            LogEntry.symptom(0.0, "", "error:X")

    def test_empty_description_rejected(self):
        with pytest.raises(LogFormatError):
            LogEntry(0.0, "m", EntryKind.SYMPTOM, "")

    def test_success_with_wrong_description_rejected(self):
        with pytest.raises(LogFormatError):
            LogEntry(0.0, "m", EntryKind.SUCCESS, "done")


class TestOrdering:
    def test_time_order(self):
        early = LogEntry.symptom(1.0, "m", "error:X")
        late = LogEntry.symptom(2.0, "m", "error:X")
        assert early < late

    def test_tie_break_by_machine(self):
        a = LogEntry.symptom(1.0, "m-a", "error:X")
        b = LogEntry.symptom(1.0, "m-b", "error:X")
        assert a < b

    def test_sorting_is_stable_global_order(self):
        entries = [
            LogEntry.success(5.0, "m"),
            LogEntry.symptom(1.0, "m", "error:X"),
            LogEntry.action(3.0, "m", "REBOOT"),
        ]
        times = [e.time for e in sorted(entries)]
        assert times == [1.0, 3.0, 5.0]


class TestRender:
    def test_render_wallclock_format(self):
        entry = LogEntry.action(3 * 3600 + 7 * 60 + 12, "m-1", "TRYNOP")
        assert entry.render() == "3:07:12 am\tTRYNOP"
