"""Unit tests of the recovery-session core, drivers and batch deciding."""

from __future__ import annotations

import math

import pytest

from repro.errors import (
    ConfigurationError,
    SimulationError,
    UnhandledStateError,
)
from repro.mdp.state import RecoveryState
from repro.policies.base import Policy, PolicyDecision
from repro.policies.hybrid import HybridPolicy
from repro.policies.static import AlwaysCheapestPolicy, RandomPolicy
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.session import (
    FORCED_SOURCE,
    Environment,
    EpisodeTelemetry,
    ExecutionResult,
    RecoverySession,
    ReplayEnvironment,
    drive,
    drive_batch,
    forced_action,
)
from repro.simplatform.platform import SimulationPlatform

from helpers import ladder_processes, make_process


class ScriptedEnvironment(Environment):
    """Succeed after a fixed number of actions, each costing 10s."""

    def __init__(self, succeed_after: int, error_type: str = "error:X"):
        self._succeed_after = succeed_after
        self._error_type = error_type
        self.executed = []

    @property
    def error_type(self) -> str:
        return self._error_type

    @property
    def max_actions(self) -> int:
        return 5

    @property
    def forced_action_name(self) -> str:
        return "RMA"

    def initial_cost(self) -> float:
        return 3.0

    def execute(self, state, action_name):
        self.executed.append(action_name)
        succeeded = len(self.executed) >= self._succeed_after
        return ExecutionResult(cost=10.0, succeeded=succeeded)


class CountingTelemetry(EpisodeTelemetry):
    def __init__(self):
        self.traces = []

    def on_episode(self, trace):
        self.traces.append(trace)


class TestForcedAction:
    def test_none_below_final_slot(self):
        assert forced_action(0, 5, "RMA") is None
        assert forced_action(3, 5, "RMA") is None

    def test_forced_from_final_slot_on(self):
        assert forced_action(4, 5, "RMA") == "RMA"
        assert forced_action(7, 5, "RMA") == "RMA"


class TestRecoverySession:
    def make_session(self, policy=None, **kwargs):
        kwargs.setdefault("max_actions", 5)
        kwargs.setdefault("forced_action_name", "RMA")
        # `is None`, not truthiness: an empty TrainedPolicy is falsy.
        if policy is None:
            policy = UserDefinedPolicy()
        return RecoverySession("error:X", policy, **kwargs)

    def test_validates_max_actions(self):
        with pytest.raises(ConfigurationError):
            self.make_session(max_actions=1)

    def test_validates_forced_name(self):
        with pytest.raises(ConfigurationError):
            self.make_session(forced_action_name="")

    def test_happy_path_accumulates_cost_in_order(self):
        session = self.make_session(initial_cost=3.0)
        decision = session.next_action()
        assert not decision.forced
        session.record_outcome(10.0, False)
        session.next_action()
        session.record_outcome(20.0, True)
        assert session.done and session.handled
        assert session.total_cost == pytest.approx(3.0 + 10.0 + 20.0)
        assert len(session.actions) == 2

    def test_cap_forces_manual_action(self):
        session = self.make_session()
        for _ in range(4):
            session.next_action()
            session.record_outcome(1.0, False)
        decision = session.next_action()
        assert decision.forced
        assert decision.action == "RMA"
        assert decision.source == FORCED_SOURCE
        session.record_outcome(1.0, True)
        assert session.forced_manual

    def test_pending_discipline(self):
        session = self.make_session()
        with pytest.raises(SimulationError):
            session.record_outcome(1.0, True)
        session.next_action()
        with pytest.raises(SimulationError):
            session.next_action()

    def test_unhandled_state_aborts_and_reraises(self):
        session = self.make_session(policy=TrainedPolicy({}))
        with pytest.raises(UnhandledStateError):
            session.next_action()
        assert session.done
        assert not session.handled

    def test_decide_after_done_raises(self):
        session = self.make_session()
        session.next_action()
        session.record_outcome(1.0, True)
        with pytest.raises(SimulationError):
            session.next_action()

    def test_transitions_recorded_on_request(self):
        session = self.make_session(record_transitions=True)
        session.next_action()
        session.record_outcome(7.0, True)
        ((state, action, cost, next_state),) = session.transitions
        assert state == RecoveryState.initial("error:X")
        assert cost == pytest.approx(7.0)
        assert next_state.is_terminal

    def test_batched_resolve_and_force_pending(self):
        session = self.make_session()
        decision = session.resolve(
            PolicyDecision(action="REBOOT", source="test")
        )
        assert decision is not None and decision.action == "REBOOT"
        session.record_outcome(1.0, False)
        for _ in range(3):
            session.next_action()
            session.record_outcome(1.0, False)
        forced = session.force_pending()
        assert forced.forced and forced.action == "RMA"

    def test_resolve_unhandled_aborts(self):
        session = self.make_session()
        assert session.resolve(UnhandledStateError("none")) is None
        assert session.done and not session.handled

    def test_force_pending_before_cap_raises(self):
        session = self.make_session()
        with pytest.raises(SimulationError):
            session.force_pending()

    def test_trace_schema(self):
        session = self.make_session(
            origin="unit", initial_cost=2.0, record_transitions=True
        )
        session.next_action()
        session.record_outcome(5.0, True, matched_log=True)
        trace = session.trace()
        assert trace.origin == "unit"
        assert trace.error_type == "error:X"
        assert trace.handled and trace.succeeded
        assert trace.total_cost == pytest.approx(7.0)
        assert trace.steps[0].matched_log is True
        assert trace.steps[0].step == 0
        assert trace.actions() == session.actions


class TestDrive:
    def test_drive_runs_to_success(self):
        environment = ScriptedEnvironment(succeed_after=2)
        outcome = drive(environment, UserDefinedPolicy(), origin="unit")
        assert outcome.handled
        assert outcome.cost == pytest.approx(3.0 + 2 * 10.0)
        assert outcome.trace.origin == "unit"
        assert len(outcome.actions) == 2

    def test_drive_caps_at_max_actions(self):
        environment = ScriptedEnvironment(succeed_after=5)
        outcome = drive(environment, UserDefinedPolicy())
        assert outcome.forced_manual
        assert len(outcome.actions) == 5
        assert outcome.actions[-1] == "RMA"

    def test_drive_unhandled(self):
        environment = ScriptedEnvironment(succeed_after=1)
        outcome = drive(environment, TrainedPolicy({}))
        assert not outcome.handled
        assert outcome.actions == ()

    def test_drive_fires_telemetry(self):
        telemetry = CountingTelemetry()
        drive(
            ScriptedEnvironment(succeed_after=1),
            UserDefinedPolicy(),
            origin="unit",
            telemetry=telemetry,
        )
        assert len(telemetry.traces) == 1
        assert telemetry.traces[0].origin == "unit"


class TestDriveBatch:
    def test_matches_sequential_drive(self, catalog):
        environments = [
            ScriptedEnvironment(succeed_after=n) for n in (1, 3, 7, 2)
        ]
        policy = UserDefinedPolicy(catalog)
        batched = drive_batch(environments, policy)
        environments2 = [
            ScriptedEnvironment(succeed_after=n) for n in (1, 3, 7, 2)
        ]
        sequential = [drive(e, policy) for e in environments2]
        for got, want in zip(batched, sequential):
            assert got.actions == want.actions
            assert got.cost == want.cost
            assert got.handled == want.handled
            assert got.forced_manual == want.forced_manual

    def test_unhandled_sessions_abort_without_sinking_batch(self, catalog):
        rules = {
            RecoveryState.initial("error:X"): ("REBOOT", 10.0),
            RecoveryState.initial("error:X").after("REBOOT", False): (
                "RMA",
                5.0,
            ),
        }
        policy = TrainedPolicy(rules)
        environments = [
            ScriptedEnvironment(succeed_after=2),
            ScriptedEnvironment(succeed_after=9),
        ]
        first, second = drive_batch(environments, policy)
        assert first.handled
        # Second runs out of rules at depth 2 and aborts alone.
        assert not second.handled

    def test_rng_policy_falls_back_to_sequential(self, catalog):
        assert RandomPolicy.batch_safe is False
        environments = [
            ScriptedEnvironment(succeed_after=n) for n in (2, 3)
        ]
        policy = RandomPolicy(catalog, seed=7)
        batched = drive_batch(environments, policy)
        environments2 = [
            ScriptedEnvironment(succeed_after=n) for n in (2, 3)
        ]
        # One fresh same-seed policy shared across episodes, exactly as
        # the batched call shares its policy instance.
        reference = RandomPolicy(catalog, seed=7)
        sequential = [drive(e, reference) for e in environments2]
        # Sequential fallback preserves the RNG draw order exactly.
        assert [o.actions for o in batched] == [
            o.actions for o in sequential
        ]

    def test_telemetry_fires_in_input_order(self, catalog):
        telemetry = CountingTelemetry()
        environments = [
            ScriptedEnvironment(succeed_after=3, error_type="error:A"),
            ScriptedEnvironment(succeed_after=1, error_type="error:B"),
        ]
        drive_batch(
            environments, UserDefinedPolicy(catalog), telemetry=telemetry
        )
        assert [t.error_type for t in telemetry.traces] == [
            "error:A",
            "error:B",
        ]


class TestDecideBatch:
    def states(self):
        initial = RecoveryState.initial("error:X")
        return [initial, initial.after("TRYNOP", False)]

    def test_default_matches_decide(self, catalog):
        policy = AlwaysCheapestPolicy(catalog)
        batch = policy.decide_batch(self.states())
        singles = [policy.decide(s) for s in self.states()]
        assert batch == singles

    def test_trained_override_matches_decide(self):
        states = self.states()
        rules = {states[0]: ("TRYNOP", 12.0)}
        policy = TrainedPolicy(rules)
        decision, miss = policy.decide_batch(states)
        assert decision == policy.decide(states[0])
        assert isinstance(miss, UnhandledStateError)
        assert miss.state == states[1]

    def test_trained_batch_rejects_terminal(self):
        policy = TrainedPolicy({})
        terminal = RecoveryState.initial("error:X").after("RMA", True)
        with pytest.raises(ConfigurationError):
            policy.decide_batch([terminal])

    def test_hybrid_override_counts_fallbacks(self, catalog):
        states = self.states()
        rules = {states[0]: ("TRYNOP", 12.0)}
        batched = HybridPolicy(TrainedPolicy(rules), UserDefinedPolicy(catalog))
        looped = HybridPolicy(TrainedPolicy(rules), UserDefinedPolicy(catalog))
        batch = batched.decide_batch(states)
        singles = [looped.decide(s) for s in states]
        assert batch == singles
        assert batched.fallback_rate == looped.fallback_rate
        assert batched.fallback_rate == pytest.approx(0.5)

    def test_hybrid_batch_safe_tracks_components(self, catalog):
        deterministic = HybridPolicy(
            TrainedPolicy({}), UserDefinedPolicy(catalog)
        )
        stochastic = HybridPolicy(TrainedPolicy({}), RandomPolicy(catalog))
        assert deterministic.batch_safe is True
        assert stochastic.batch_safe is False


class TestReplayEnvironment:
    def test_delegates_to_platform(self, catalog):
        process = make_process(["REBOOT", "RMA"], error_type="error:X")
        platform = SimulationPlatform([process], catalog)
        environment = ReplayEnvironment(platform, process)
        assert environment.error_type == "error:X"
        assert environment.max_actions == platform.max_actions
        assert environment.forced_action_name == catalog.strongest.name
        assert environment.initial_cost() == pytest.approx(
            platform.initial_cost(process)
        )
        result = environment.execute(
            RecoveryState.initial("error:X"), "REBOOT"
        )
        expected = platform.step(
            process, RecoveryState.initial("error:X"), "REBOOT"
        )
        assert result.cost == expected.cost
        assert result.succeeded == expected.succeeded
        assert result.next_state == expected.next_state

    def test_platform_forced_action_delegates_to_core(self, catalog):
        processes = ladder_processes("error:X", [(["REBOOT", "RMA"], 2)])
        platform = SimulationPlatform(processes, catalog, max_actions=4)
        assert platform.forced_action_name == catalog.strongest.name
        for count in range(6):
            assert platform.forced_action(count) == forced_action(
                count, 4, catalog.strongest.name
            )

    def test_replay_unhandled_cost_is_nan(self, catalog):
        process = make_process(["REBOOT", "RMA"], error_type="error:X")
        platform = SimulationPlatform([process], catalog)
        result = platform.replay(process, TrainedPolicy({}))
        assert not result.handled
        assert math.isnan(result.cost)
