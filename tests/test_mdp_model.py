"""Tests for the generic finite MDP."""

import pytest

from repro.errors import ConfigurationError
from repro.mdp.model import FiniteMDP, Transition


def two_state_mdp(p=0.5, cost_a=1.0, cost_b=10.0):
    """s0 --a--> (p: done, 1-p: s0) ; s0 --b--> done always."""
    return FiniteMDP(
        {
            "s0": {
                "a": [
                    Transition(p, cost_a, "done"),
                    Transition(1 - p, cost_a, "s0"),
                ],
                "b": [Transition(1.0, cost_b, "done")],
            }
        },
        terminal_states=["done"],
    )


class TestConstruction:
    def test_valid_model(self):
        mdp = two_state_mdp()
        assert set(mdp.states) == {"s0"}
        assert mdp.is_terminal("done")

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="sum"):
            FiniteMDP(
                {"s": {"a": [Transition(0.5, 1.0, "t")]}},
                terminal_states=["t"],
            )

    def test_unknown_next_state_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown state"):
            FiniteMDP(
                {"s": {"a": [Transition(1.0, 1.0, "nowhere")]}},
                terminal_states=["t"],
            )

    def test_terminal_with_transitions_rejected(self):
        with pytest.raises(ConfigurationError):
            FiniteMDP(
                {"t": {"a": [Transition(1.0, 1.0, "t")]}},
                terminal_states=["t"],
            )

    def test_state_without_actions_rejected(self):
        with pytest.raises(ConfigurationError):
            FiniteMDP({"s": {}}, terminal_states=[])

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            Transition(1.5, 1.0, "t")


class TestQueries:
    def test_actions(self):
        mdp = two_state_mdp()
        assert set(mdp.actions("s0")) == {"a", "b"}
        assert mdp.actions("done") == ()

    def test_outcomes(self):
        mdp = two_state_mdp(p=0.3)
        outcomes = mdp.outcomes("s0", "a")
        assert sum(t.probability for t in outcomes) == pytest.approx(1.0)

    def test_expected_cost(self):
        mdp = two_state_mdp(cost_a=2.0)
        assert mdp.expected_cost("s0", "a") == pytest.approx(2.0)

    def test_successor_states_deduplicated(self):
        mdp = two_state_mdp()
        assert set(mdp.successor_states("s0", "a")) == {"done", "s0"}

    def test_unknown_state_raises(self):
        with pytest.raises(ConfigurationError):
            two_state_mdp().actions("mystery")

    def test_unknown_action_raises(self):
        with pytest.raises(ConfigurationError):
            two_state_mdp().outcomes("s0", "zz")
