"""Tests for the simulation platform's step and replay semantics."""

import pytest

from helpers import ladder_processes, make_process
from repro.actions import default_catalog
from repro.errors import SimulationError
from repro.mdp.state import RecoveryState
from repro.policies import (
    AlwaysStrongestPolicy,
    FixedSequencePolicy,
    TrainedPolicy,
    UserDefinedPolicy,
)
from repro.simplatform.platform import CostMode, SimulationPlatform

CATALOG = default_catalog()


def platform_for(processes, **kwargs):
    return SimulationPlatform(processes, CATALOG, **kwargs)


class TestStep:
    def test_matching_action_uses_actual_cost(self):
        process = make_process(["TRYNOP", "REBOOT"], step=600.0)
        platform = platform_for([process])
        state = RecoveryState.initial("error:X")
        outcome = platform.step(process, state, "TRYNOP")
        assert outcome.matched_log
        assert not outcome.succeeded
        assert outcome.cost == pytest.approx(600.0)

    def test_success_at_final_matching_action(self):
        process = make_process(["TRYNOP", "REBOOT"], step=600.0)
        platform = platform_for([process])
        state = RecoveryState("error:X", tried=("TRYNOP",))
        outcome = platform.step(process, state, "REBOOT")
        assert outcome.succeeded
        assert outcome.matched_log
        assert outcome.next_state.is_terminal

    def test_stronger_action_covers_early(self):
        process = make_process(["TRYNOP", "REBOOT"])
        platform = platform_for([process])
        state = RecoveryState.initial("error:X")
        outcome = platform.step(process, state, "REIMAGE")
        assert outcome.succeeded
        assert not outcome.matched_log

    def test_non_matching_failure_uses_average(self):
        processes = ladder_processes(
            "error:X", [(["TRYNOP", "REBOOT"], 5)], step=700.0
        )
        platform = platform_for(processes)
        state = RecoveryState.initial("error:X")
        # REBOOT at position 0 does not match the logged TRYNOP, but it
        # covers the required {REBOOT} -> success with averaged cost.
        outcome = platform.step(processes[0], state, "REBOOT")
        assert outcome.succeeded
        assert outcome.cost == pytest.approx(700.0)

    def test_averages_only_mode_never_matches(self):
        process = make_process(["REBOOT"], step=600.0)
        platform = platform_for([process], cost_mode=CostMode.AVERAGES_ONLY)
        outcome = platform.step(
            process, RecoveryState.initial("error:X"), "REBOOT"
        )
        assert outcome.succeeded
        assert outcome.cost == pytest.approx(600.0)  # the (only) average

    def test_terminal_state_rejected(self):
        process = make_process(["REBOOT"])
        platform = platform_for([process])
        terminal = RecoveryState("error:X", True, ("REBOOT",))
        with pytest.raises(SimulationError):
            platform.step(process, terminal, "REBOOT")

    def test_error_type_mismatch_rejected(self):
        process = make_process(["REBOOT"], error_type="error:X")
        platform = platform_for([process])
        with pytest.raises(SimulationError, match="does not match"):
            platform.step(
                process, RecoveryState.initial("error:Y"), "REBOOT"
            )


class TestReplay:
    def test_self_replay_is_exact(self):
        process = make_process(
            ["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], step=800.0
        )
        platform = platform_for([process])
        result = platform.replay(process, UserDefinedPolicy(CATALOG))
        assert result.handled
        assert result.actions == process.actions
        assert result.cost == pytest.approx(process.downtime)

    def test_self_replay_exact_on_generated_trace(self, small_processes):
        platform = SimulationPlatform(small_processes, CATALOG)
        policy = UserDefinedPolicy(CATALOG)
        for process in small_processes[:200]:
            result = platform.replay(process, policy)
            assert result.handled
            assert result.cost == pytest.approx(result.real_cost)

    def test_jump_policy_skips_prefix(self):
        process = make_process(
            ["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], step=800.0
        )
        platform = platform_for([process])
        policy = FixedSequencePolicy(["REIMAGE", "RMA"], CATALOG)
        result = platform.replay(process, policy)
        assert result.handled
        assert result.actions == ("REIMAGE",)
        assert result.cost < result.real_cost

    def test_unhandled_policy_reported(self):
        process = make_process(["TRYNOP", "REBOOT"])
        platform = platform_for([process])
        empty = TrainedPolicy({}, label="empty")
        result = platform.replay(process, empty)
        assert not result.handled
        assert result.real_cost == pytest.approx(process.downtime)

    def test_action_cap_forces_manual(self):
        process = make_process(["TRYNOP", "RMA"])
        platform = platform_for([process], max_actions=3)
        # A policy that would watch forever gets cut off by the cap.
        stuck = TrainedPolicy(
            {
                RecoveryState.initial("error:X"): ("TRYNOP", 0.0),
                RecoveryState("error:X", tried=("TRYNOP",)): ("TRYNOP", 0.0),
                RecoveryState(
                    "error:X", tried=("TRYNOP", "TRYNOP")
                ): ("TRYNOP", 0.0),
            },
            label="stuck",
        )
        result = platform.replay(process, stuck)
        assert result.handled
        assert result.forced_manual
        assert result.actions[-1] == "RMA"
        assert len(result.actions) <= 3

    def test_self_healed_process_charges_real_downtime(self):
        from repro.recoverylog.entry import LogEntry
        from repro.recoverylog.process import RecoveryProcess

        process = RecoveryProcess(
            "m",
            (
                LogEntry.symptom(0.0, "m", "error:X"),
                LogEntry.success(50.0, "m"),
            ),
        )
        platform = platform_for([process])
        result = platform.replay(process, AlwaysStrongestPolicy(CATALOG))
        assert result.handled
        assert result.cost == pytest.approx(50.0)
        assert result.actions == ()

    def test_initial_cost_actual_vs_average(self):
        processes = ladder_processes(
            "error:X", [(["REBOOT"], 4)]
        )
        actual = platform_for(processes)
        averaged = platform_for(
            processes, cost_mode=CostMode.AVERAGES_ONLY
        )
        assert actual.initial_cost(processes[0]) == pytest.approx(60.0)
        assert averaged.initial_cost(processes[0]) == pytest.approx(60.0)

    def test_bad_max_actions_rejected(self):
        with pytest.raises(Exception):
            platform_for([make_process(["REBOOT"])], max_actions=1)
