"""Tests for the simulation platform's step and replay semantics."""

import pytest

from helpers import ladder_processes, make_process
from repro.actions import default_catalog
from repro.errors import SimulationError
from repro.mdp.state import RecoveryState
from repro.policies import (
    AlwaysStrongestPolicy,
    FixedSequencePolicy,
    TrainedPolicy,
    UserDefinedPolicy,
)
from repro.simplatform.platform import CostMode, SimulationPlatform

CATALOG = default_catalog()


def platform_for(processes, **kwargs):
    return SimulationPlatform(processes, CATALOG, **kwargs)


class TestStep:
    def test_matching_action_uses_actual_cost(self):
        process = make_process(["TRYNOP", "REBOOT"], step=600.0)
        platform = platform_for([process])
        state = RecoveryState.initial("error:X")
        outcome = platform.step(process, state, "TRYNOP")
        assert outcome.matched_log
        assert not outcome.succeeded
        assert outcome.cost == pytest.approx(600.0)

    def test_success_at_final_matching_action(self):
        process = make_process(["TRYNOP", "REBOOT"], step=600.0)
        platform = platform_for([process])
        state = RecoveryState("error:X", tried=("TRYNOP",))
        outcome = platform.step(process, state, "REBOOT")
        assert outcome.succeeded
        assert outcome.matched_log
        assert outcome.next_state.is_terminal

    def test_stronger_action_covers_early(self):
        process = make_process(["TRYNOP", "REBOOT"])
        platform = platform_for([process])
        state = RecoveryState.initial("error:X")
        outcome = platform.step(process, state, "REIMAGE")
        assert outcome.succeeded
        assert not outcome.matched_log

    def test_non_matching_failure_uses_average(self):
        processes = ladder_processes(
            "error:X", [(["TRYNOP", "REBOOT"], 5)], step=700.0
        )
        platform = platform_for(processes)
        state = RecoveryState.initial("error:X")
        # REBOOT at position 0 does not match the logged TRYNOP, but it
        # covers the required {REBOOT} -> success with averaged cost.
        outcome = platform.step(processes[0], state, "REBOOT")
        assert outcome.succeeded
        assert outcome.cost == pytest.approx(700.0)

    def test_averages_only_mode_never_matches(self):
        process = make_process(["REBOOT"], step=600.0)
        platform = platform_for([process], cost_mode=CostMode.AVERAGES_ONLY)
        outcome = platform.step(
            process, RecoveryState.initial("error:X"), "REBOOT"
        )
        assert outcome.succeeded
        assert outcome.cost == pytest.approx(600.0)  # the (only) average

    def test_terminal_state_rejected(self):
        process = make_process(["REBOOT"])
        platform = platform_for([process])
        terminal = RecoveryState("error:X", True, ("REBOOT",))
        with pytest.raises(SimulationError):
            platform.step(process, terminal, "REBOOT")

    def test_error_type_mismatch_rejected(self):
        process = make_process(["REBOOT"], error_type="error:X")
        platform = platform_for([process])
        with pytest.raises(SimulationError, match="does not match"):
            platform.step(
                process, RecoveryState.initial("error:Y"), "REBOOT"
            )


class TestReplay:
    def test_self_replay_is_exact(self):
        process = make_process(
            ["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], step=800.0
        )
        platform = platform_for([process])
        result = platform.replay(process, UserDefinedPolicy(CATALOG))
        assert result.handled
        assert result.actions == process.actions
        assert result.cost == pytest.approx(process.downtime)

    def test_self_replay_exact_on_generated_trace(self, small_processes):
        platform = SimulationPlatform(small_processes, CATALOG)
        policy = UserDefinedPolicy(CATALOG)
        for process in small_processes[:200]:
            result = platform.replay(process, policy)
            assert result.handled
            assert result.cost == pytest.approx(result.real_cost)

    def test_jump_policy_skips_prefix(self):
        process = make_process(
            ["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], step=800.0
        )
        platform = platform_for([process])
        policy = FixedSequencePolicy(["REIMAGE", "RMA"], CATALOG)
        result = platform.replay(process, policy)
        assert result.handled
        assert result.actions == ("REIMAGE",)
        assert result.cost < result.real_cost

    def test_unhandled_policy_reported(self):
        process = make_process(["TRYNOP", "REBOOT"])
        platform = platform_for([process])
        empty = TrainedPolicy({}, label="empty")
        result = platform.replay(process, empty)
        assert not result.handled
        assert result.real_cost == pytest.approx(process.downtime)

    def test_action_cap_forces_manual(self):
        process = make_process(["TRYNOP", "RMA"])
        platform = platform_for([process], max_actions=3)
        # A policy that would watch forever gets cut off by the cap.
        stuck = TrainedPolicy(
            {
                RecoveryState.initial("error:X"): ("TRYNOP", 0.0),
                RecoveryState("error:X", tried=("TRYNOP",)): ("TRYNOP", 0.0),
                RecoveryState(
                    "error:X", tried=("TRYNOP", "TRYNOP")
                ): ("TRYNOP", 0.0),
            },
            label="stuck",
        )
        result = platform.replay(process, stuck)
        assert result.handled
        assert result.forced_manual
        assert result.actions[-1] == "RMA"
        assert len(result.actions) <= 3

    def test_self_healed_process_charges_real_downtime(self):
        from repro.recoverylog.entry import LogEntry
        from repro.recoverylog.process import RecoveryProcess

        process = RecoveryProcess(
            "m",
            (
                LogEntry.symptom(0.0, "m", "error:X"),
                LogEntry.success(50.0, "m"),
            ),
        )
        platform = platform_for([process])
        result = platform.replay(process, AlwaysStrongestPolicy(CATALOG))
        assert result.handled
        assert result.cost == pytest.approx(50.0)
        assert result.actions == ()

    def test_initial_cost_actual_vs_average(self):
        processes = ladder_processes(
            "error:X", [(["REBOOT"], 4)]
        )
        actual = platform_for(processes)
        averaged = platform_for(
            processes, cost_mode=CostMode.AVERAGES_ONLY
        )
        assert actual.initial_cost(processes[0]) == pytest.approx(60.0)
        assert averaged.initial_cost(processes[0]) == pytest.approx(60.0)

    def test_bad_max_actions_rejected(self):
        with pytest.raises(Exception):
            platform_for([make_process(["REBOOT"])], max_actions=1)


class TestForcedActionCap:
    """The N-cap rule lives in one place: ``forced_action``.

    Both ``replay`` and the trainer's episode loops consult it, so the
    boundary — the manual repair becomes mandatory exactly at
    ``attempt_count == max_actions - 1`` — is pinned here once.
    """

    def test_boundary_is_max_actions_minus_one(self):
        platform = platform_for([make_process(["RMA"])], max_actions=5)
        assert [platform.forced_action(n) for n in range(4)] == [None] * 4
        assert platform.forced_action(4) == "RMA"
        assert platform.forced_action(11) == "RMA"

    def test_replay_forces_exactly_at_the_last_slot(self):
        process = make_process(["RMA"])  # only the strongest cures
        platform = platform_for([process], max_actions=4)
        stuck = TrainedPolicy(
            {
                RecoveryState("error:X", tried=("TRYNOP",) * n): (
                    "TRYNOP",
                    0.0,
                )
                for n in range(4)
            },
            label="stuck",
        )
        result = platform.replay(process, stuck)
        assert result.forced_manual
        # Three free choices (attempt counts 0..max_actions - 2), then
        # the forced manual repair at attempt_count == max_actions - 1.
        assert result.actions == ("TRYNOP",) * 3 + ("RMA",)
        assert platform.forced_action(len(result.actions) - 1) == "RMA"
        assert platform.forced_action(len(result.actions) - 2) is None

    def test_trainer_episode_obeys_the_same_boundary(self):
        from repro.learning.exploration import BoltzmannExplorer
        from repro.learning.qlearning import QLearningConfig, QLearningTrainer
        from repro.learning.qtable_array import create_qtable

        process = make_process(["RMA"])
        platform = platform_for([process], max_actions=3)
        for backend in ("dict", "array"):
            trainer = QLearningTrainer(
                platform,
                QLearningConfig(min_visits_per_action=5, backend=backend),
            )
            qtable = create_qtable(CATALOG.names(), backend=backend)
            trajectory = trainer.run_episode(
                qtable, BoltzmannExplorer(seed=0), process, sweep=0
            )
            # Forced exploration keeps proposing TRYNOP (fresh states,
            # catalog-order tie break) until the cap forces the manual
            # repair at attempt_count == max_actions - 1.
            assert [t[1] for t in trajectory] == ["TRYNOP", "TRYNOP", "RMA"]
            assert trajectory[-1][0].attempt_count == platform.max_actions - 1


class TestRequiredStrengthsCache:
    def test_precomputed_for_the_ensemble_by_value(self):
        processes = ladder_processes(
            "error:X", [(["TRYNOP", "REBOOT"], 3), (["REIMAGE"], 2)]
        )
        platform = platform_for(processes)
        assert set(platform._required_by_process) == set(processes)

    def test_value_equal_duplicates_share_one_entry(self):
        process = make_process(["TRYNOP", "REBOOT"])
        duplicate = make_process(["TRYNOP", "REBOOT"])
        assert process == duplicate and process is not duplicate
        platform = platform_for([process, duplicate])
        assert len(platform._required_by_process) == 1

    def test_foreign_process_replays_without_growing_the_cache(self):
        platform = platform_for([make_process(["TRYNOP", "REBOOT"])])
        foreign = make_process(["REIMAGE"], machine="m-foreign")
        before = dict(platform._required_by_process)
        outcome = platform.step(
            foreign, RecoveryState.initial("error:X"), "REIMAGE"
        )
        assert outcome.succeeded
        assert platform._required_by_process == before

    def test_unknown_logged_action_surfaces_at_first_step(self):
        from repro.errors import UnknownActionError
        from repro.recoverylog.entry import LogEntry
        from repro.recoverylog.process import RecoveryProcess

        weird = RecoveryProcess(
            "m",
            (
                LogEntry.symptom(0.0, "m", "error:X"),
                LogEntry.action(60.0, "m", "FROBNICATE"),
                LogEntry.success(600.0, "m"),
            ),
        )
        # Construction must not raise: the error belongs to replay time,
        # exactly as with the lazily computed required strengths.
        platform = platform_for([weird, make_process(["REBOOT"])])
        with pytest.raises(UnknownActionError):
            platform.step(
                weird, RecoveryState.initial("error:X"), "REBOOT"
            )


def _fast_succeeds(compiled, pidx, executed_counts):
    """The fast loop's success rule: cumulative rank-count dominance."""
    required = compiled.required_ge[pidx]
    running = 0
    for rank in range(compiled.n_actions - 1, -1, -1):
        running += executed_counts[rank]
        if running < required[rank]:
            return False
    return True


class TestCompiledReplay:
    def _platform(self):
        processes = ladder_processes(
            "error:X",
            [(["TRYNOP", "REBOOT"], 2), (["TRYNOP", "REBOOT", "REIMAGE"], 2),
             (["RMA"], 1)],
            realistic_durations=True,
        )
        return platform_for(processes)

    def test_compiled_is_built_once(self):
        platform = self._platform()
        assert platform.compiled() is platform.compiled()

    def test_action_ids_are_catalog_positions(self):
        platform = self._platform()
        assert platform.compiled().actions == tuple(CATALOG.names())

    def test_process_index_first_match_and_foreign_rejection(self):
        process = make_process(["TRYNOP", "REBOOT"])
        duplicate = make_process(["TRYNOP", "REBOOT"])
        platform = platform_for([process, duplicate])
        assert platform.process_index(process) == 0
        assert platform.process_index(duplicate) == 0
        with pytest.raises(SimulationError, match="not part"):
            platform.process_index(make_process(["RMA"], machine="x"))

    def test_success_rule_matches_step_exactly(self):
        platform = self._platform()
        compiled = platform.compiled()
        names = compiled.actions
        for pidx, process in enumerate(platform.processes):
            # Walk every two-action prefix; compare the compiled success
            # decision against the reference ``covers``-based step.
            for first in range(compiled.n_actions):
                state = RecoveryState.initial(process.error_type)
                outcome = platform.step(process, state, names[first])
                counts = [0] * compiled.n_actions
                counts[first] += 1
                assert _fast_succeeds(compiled, pidx, counts) == (
                    outcome.succeeded
                ), (pidx, names[first])
                if outcome.succeeded:
                    continue
                for second in range(compiled.n_actions):
                    follow = platform.step(
                        process, outcome.next_state, names[second]
                    )
                    counts2 = list(counts)
                    counts2[second] += 1
                    assert _fast_succeeds(compiled, pidx, counts2) == (
                        follow.succeeded
                    ), (pidx, names[first], names[second])

    def test_logged_attempts_and_costs_mirror_the_process(self):
        platform = self._platform()
        compiled = platform.compiled()
        names = list(compiled.actions)
        for pidx, process in enumerate(platform.processes):
            attempts = process.attempts
            assert compiled.attempt_aids[pidx] == tuple(
                names.index(a.action) for a in attempts
            )
            assert compiled.attempt_succeeded[pidx] == tuple(
                a.succeeded for a in attempts
            )
            assert compiled.attempt_durations[pidx] == tuple(
                a.duration for a in attempts
            )
            for aid, name in enumerate(names):
                assert compiled.success_cost[pidx][aid] == (
                    platform.stats.success_cost(process.error_type, name)
                )
                assert compiled.failure_cost[pidx][aid] == (
                    platform.stats.failure_cost(process.error_type, name)
                )

    def test_unknown_action_process_is_marked_uncompilable(self):
        from repro.recoverylog.entry import LogEntry
        from repro.recoverylog.process import RecoveryProcess

        weird = RecoveryProcess(
            "m",
            (
                LogEntry.symptom(0.0, "m", "error:X"),
                LogEntry.action(60.0, "m", "FROBNICATE"),
                LogEntry.success(600.0, "m"),
            ),
        )
        platform = platform_for([weird, make_process(["REBOOT"])])
        compiled = platform.compiled()
        assert compiled.required_ge[0] is None
        assert compiled.attempt_aids[0] == (-1,)
        assert compiled.required_ge[1] is not None
