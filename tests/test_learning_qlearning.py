"""Tests for the Q-learning trainer (Figure 2 algorithm)."""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.errors import ConfigurationError, TrainingError
from repro.learning.exploration import TemperatureSchedule
from repro.learning.qlearning import QLearningConfig, QLearningTrainer
from repro.learning.qtable import QTable
from repro.mdp.state import RecoveryState
from repro.simplatform.platform import SimulationPlatform

CATALOG = default_catalog()


def reimage_type_processes():
    """A type where the ladder wastes TRYNOP + 2x REBOOT before REIMAGE."""
    return ladder_processes(
        "error:Hard",
        [
            (["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 30),
            (["TRYNOP", "REBOOT"], 2),
        ],
        realistic_durations=True,
    )


def transient_type_processes():
    """A type where watching usually cures and reboots are expensive."""
    return ladder_processes(
        "error:Soft",
        [
            (["TRYNOP"], 20),
            (["TRYNOP", "REBOOT"], 10),
        ],
        realistic_durations=True,
    )


def trainer_for(processes, **config_overrides):
    platform = SimulationPlatform(processes, CATALOG)
    defaults = dict(max_sweeps=120, seed=1)
    defaults.update(config_overrides)
    return QLearningTrainer(platform, QLearningConfig(**defaults))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sweeps": 0},
            {"episodes_per_sweep": 0},
            {"convergence_patience": 0},
            {"exploration": "quantum"},
            {"alpha_floor": -0.1},
            {"min_visits_per_action": -1},
            {"warm_start_passes": -1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            QLearningConfig(**kwargs)


class TestEpisodes:
    def test_episode_terminates_and_records_transitions(self):
        processes = reimage_type_processes()
        trainer = trainer_for(processes)
        qtable = QTable(CATALOG.names())
        from repro.learning.exploration import BoltzmannExplorer

        explorer = BoltzmannExplorer(seed=0)
        trajectory = trainer.run_episode(
            qtable, explorer, processes[0], sweep=0
        )
        assert trajectory
        assert trajectory[-1][3].is_terminal
        # Every visited (state, action) received an update.
        for state, action, _cost, _nxt in trajectory:
            assert qtable.visit_count(state, action) >= 1

    def test_episode_respects_action_cap(self):
        processes = ladder_processes(
            "error:RMAonly", [(["TRYNOP", "REBOOT", "REIMAGE", "RMA"], 5)]
        )
        platform = SimulationPlatform(processes, CATALOG, max_actions=4)
        trainer = QLearningTrainer(
            platform, QLearningConfig(max_sweeps=5, seed=0)
        )
        qtable = QTable(CATALOG.names())
        from repro.learning.exploration import BoltzmannExplorer

        trajectory = trainer.run_episode(
            qtable, BoltzmannExplorer(seed=0), processes[0], sweep=0
        )
        assert len(trajectory) <= 4
        assert trajectory[-1][3].is_terminal

    def test_warm_start_anchors_logged_pairs(self):
        processes = reimage_type_processes()
        trainer = trainer_for(processes, warm_start_passes=1)
        qtable = QTable(CATALOG.names())
        trainer.warm_start(qtable, processes)
        s0 = RecoveryState.initial("error:Hard")
        assert qtable.visit_count(s0, "TRYNOP") == len(processes)
        # The anchored value reflects actual ladder costs (finite, > 0).
        assert qtable.value(s0, "TRYNOP") > 0


class TestTrainType:
    def test_learns_to_jump_to_reimage(self):
        processes = reimage_type_processes()
        trainer = trainer_for(processes)
        result = trainer.train_type("error:Hard", processes)
        s0 = RecoveryState.initial("error:Hard")
        values = result.qtable.values_for(s0)
        # Jumping straight to REIMAGE must beat starting with TRYNOP,
        # whose path pays the whole ladder.
        assert values["REIMAGE"] < values["TRYNOP"]

    def test_learns_to_watch_first_for_transients(self):
        processes = transient_type_processes()
        trainer = trainer_for(processes)
        result = trainer.train_type("error:Soft", processes)
        s0 = RecoveryState.initial("error:Soft")
        greedy, _ = result.qtable.greedy_action(s0)
        assert greedy == "TRYNOP"

    def test_convergence_reported(self):
        processes = transient_type_processes()
        trainer = trainer_for(
            processes,
            max_sweeps=400,
            temperature=TemperatureSchedule(
                initial=2000.0, decay=0.9, floor=50.0
            ),
            convergence_patience=10,
        )
        result = trainer.train_type("error:Soft", processes)
        assert result.converged
        assert result.sweeps_to_convergence < 400

    def test_cap_reported_when_not_converged(self):
        processes = transient_type_processes()
        trainer = trainer_for(processes, max_sweeps=3)
        result = trainer.train_type("error:Soft", processes)
        assert not result.converged
        assert result.sweeps_to_convergence == 3

    def test_callback_can_stop_early(self):
        processes = transient_type_processes()
        trainer = trainer_for(processes, max_sweeps=100)
        result = trainer.train_type(
            "error:Soft",
            processes,
            sweep_callback=lambda sweep, qt: sweep >= 4,
        )
        assert result.sweeps_run == 5
        assert result.converged

    def test_empty_processes_rejected(self):
        trainer = trainer_for(transient_type_processes())
        with pytest.raises(TrainingError):
            trainer.train_type("error:Soft", [])

    def test_wrong_type_rejected(self):
        processes = transient_type_processes()
        trainer = trainer_for(processes)
        with pytest.raises(TrainingError):
            trainer.train_type("error:Other", processes)

    def test_min_visits_forces_every_action(self):
        processes = transient_type_processes()
        trainer = trainer_for(processes, min_visits_per_action=2)
        result = trainer.train_type("error:Soft", processes)
        s0 = RecoveryState.initial("error:Soft")
        for action in CATALOG.names():
            assert result.qtable.visit_count(s0, action) >= 2


class TestTrainAll:
    def test_trains_each_type(self):
        hard = reimage_type_processes()
        soft = transient_type_processes()
        trainer = trainer_for(hard + soft, max_sweeps=60)
        result = trainer.train(
            {"error:Hard": hard, "error:Soft": soft, "error:Empty": []}
        )
        assert set(result.per_type) == {"error:Hard", "error:Soft"}
        assert set(result.sweeps_to_convergence()) == {
            "error:Hard",
            "error:Soft",
        }

    def test_unconverged_types_listed(self):
        soft = transient_type_processes()
        trainer = trainer_for(soft, max_sweeps=2)
        result = trainer.train({"error:Soft": soft})
        assert result.unconverged_types() == ("error:Soft",)
