"""Tests for error-type inference and the registry."""

import pytest

from helpers import ladder_processes, make_process
from repro.errors import UnknownErrorTypeError
from repro.errortypes.inference import infer_error_type
from repro.errortypes.registry import ErrorTypeRegistry


class TestInference:
    def test_initial_symptom_is_error_type(self):
        process = make_process(
            ["TRYNOP"], error_type="error:First", extra_symptoms=["warn:Second"]
        )
        assert infer_error_type(process) == "error:First"


@pytest.fixture
def registry():
    processes = (
        ladder_processes("error:A", [(["TRYNOP"], 5)])
        + ladder_processes("error:B", [(["REBOOT"], 3)], machine_prefix="n")
        + ladder_processes("error:C", [(["RMA"], 1)], machine_prefix="o")
    )
    return ErrorTypeRegistry.from_processes(processes)


class TestRegistry:
    def test_ranking_by_frequency(self, registry):
        assert registry.names == ("error:A", "error:B", "error:C")
        assert registry.rank_of("error:B") == 2

    def test_counts_and_downtime(self, registry):
        info = registry["error:A"]
        assert info.count == 5
        assert info.total_downtime > 0
        assert info.mean_downtime == pytest.approx(
            info.total_downtime / 5
        )

    def test_unknown_type_raises(self, registry):
        with pytest.raises(UnknownErrorTypeError):
            registry["error:missing"]

    def test_contains(self, registry):
        assert "error:A" in registry
        assert "error:zzz" not in registry

    def test_top_k(self, registry):
        top = registry.top(2)
        assert top.names == ("error:A", "error:B")
        assert len(top) == 2

    def test_top_k_larger_than_registry(self, registry):
        assert len(registry.top(10)) == 3

    def test_coverage_of_top(self, registry):
        assert registry.coverage_of_top(1) == pytest.approx(5 / 9)
        assert registry.coverage_of_top(3) == pytest.approx(1.0)

    def test_total_process_count(self, registry):
        assert registry.total_process_count() == 9

    def test_partition_groups_by_type(self, registry):
        processes = ladder_processes(
            "error:B", [(["TRYNOP"], 2)]
        ) + ladder_processes("error:unknown", [(["TRYNOP"], 2)], machine_prefix="q")
        groups = registry.top(2).partition(processes)
        assert len(groups["error:B"]) == 2
        assert groups["error:A"] == []
        assert "error:unknown" not in groups

    def test_rank_tie_breaks_alphabetically(self):
        processes = ladder_processes(
            "error:Z", [(["TRYNOP"], 2)]
        ) + ladder_processes("error:A", [(["TRYNOP"], 2)], machine_prefix="n")
        registry = ErrorTypeRegistry.from_processes(processes)
        assert registry.names == ("error:A", "error:Z")

    def test_iteration_yields_infos_in_rank_order(self, registry):
        ranks = [info.rank for info in registry]
        assert ranks == [1, 2, 3]
