"""Tests for the ground-truth fault model."""

import numpy as np
import pytest

from repro.actions import REBOOT, RMA, TRYNOP, default_catalog
from repro.cluster.faults import FaultCatalog, FaultType, validate_fault_catalog
from repro.errors import ConfigurationError


def fault(name="f", primary="error:X", cures=None, weight=1.0, **kwargs):
    return FaultType(
        name=name,
        primary_symptom=primary,
        cure_probabilities=cures or {"REBOOT": 0.8},
        weight=weight,
        **kwargs,
    )


class TestFaultType:
    def test_cure_probability_lookup(self):
        f = fault(cures={"TRYNOP": 0.2, "REBOOT": 0.9})
        assert f.cure_probability(TRYNOP) == pytest.approx(0.2)
        assert f.cure_probability(REBOOT) == pytest.approx(0.9)

    def test_missing_action_raw_probability_is_zero(self):
        assert fault(cures={"REIMAGE": 0.5}).cure_probability(TRYNOP) == 0.0

    def test_manual_action_always_cures(self):
        assert fault(cures={"REIMAGE": 0.5}).cure_probability(RMA) == 1.0

    def test_all_symptoms_starts_with_primary(self):
        f = FaultType(
            name="f",
            primary_symptom="error:X",
            secondary_symptoms=("warn:A",),
        )
        assert f.all_symptoms == ("error:X", "warn:A")

    def test_primary_cannot_repeat_in_secondaries(self):
        with pytest.raises(ConfigurationError):
            FaultType(
                name="f",
                primary_symptom="error:X",
                secondary_symptoms=("error:X",),
            )

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            fault(cures={"REBOOT": 1.5})

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            fault(weight=0.0)


class TestFaultCatalog:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultCatalog([fault("a"), fault("a", primary="error:Y")])

    def test_duplicate_primaries_rejected(self):
        with pytest.raises(ConfigurationError, match="primary"):
            FaultCatalog([fault("a"), fault("b")])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultCatalog([])

    def test_lookup(self):
        catalog = FaultCatalog([fault("a")])
        assert catalog["a"].name == "a"
        with pytest.raises(ConfigurationError):
            catalog["missing"]

    def test_occurrence_probabilities_normalized(self):
        catalog = FaultCatalog(
            [
                fault("a", weight=3.0),
                fault("b", primary="error:Y", weight=1.0),
            ]
        )
        probabilities = catalog.occurrence_probabilities()
        assert probabilities["a"] == pytest.approx(0.75)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_sampling_follows_weights(self):
        catalog = FaultCatalog(
            [
                fault("common", weight=9.0),
                fault("rare", primary="error:Y", weight=1.0),
            ]
        )
        rng = np.random.default_rng(0)
        draws = [catalog.sample(rng).name for _ in range(2000)]
        share = draws.count("common") / len(draws)
        assert 0.85 < share < 0.95


class TestEffectiveCureProbabilities:
    def test_unspecified_inherits_running_maximum(self):
        from repro.cluster.faults import effective_cure_probabilities

        f = fault(cures={"TRYNOP": 0.3, "REBOOT": 0.9})
        effective = effective_cure_probabilities(f, default_catalog())
        assert effective["REIMAGE"] == pytest.approx(0.9)
        assert effective["RMA"] == 1.0

    def test_unspecified_weakest_stays_zero(self):
        from repro.cluster.faults import effective_cure_probabilities

        f = fault(cures={"REIMAGE": 0.8})
        effective = effective_cure_probabilities(f, default_catalog())
        assert effective["TRYNOP"] == 0.0
        assert effective["REBOOT"] == 0.0

    def test_explicit_decrease_rejected(self):
        from repro.cluster.faults import effective_cure_probabilities

        f = fault(cures={"TRYNOP": 0.9, "REIMAGE": 0.2})
        with pytest.raises(ConfigurationError, match="monotone"):
            effective_cure_probabilities(f, default_catalog())


class TestValidateFaultCatalog:
    def test_monotone_cures_pass(self):
        catalog = FaultCatalog(
            [fault("a", cures={"TRYNOP": 0.1, "REBOOT": 0.5, "REIMAGE": 0.9})]
        )
        validate_fault_catalog(catalog, default_catalog())

    def test_decreasing_cures_rejected(self):
        catalog = FaultCatalog(
            [fault("a", cures={"TRYNOP": 0.9, "REBOOT": 0.1})]
        )
        with pytest.raises(ConfigurationError, match="monotone"):
            validate_fault_catalog(catalog, default_catalog())

    def test_unknown_action_rejected(self):
        catalog = FaultCatalog([fault("a", cures={"FSCK": 0.5})])
        with pytest.raises(ConfigurationError, match="unknown action"):
            validate_fault_catalog(catalog, default_catalog())
