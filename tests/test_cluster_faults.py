"""Tests for the ground-truth fault model."""

import numpy as np
import pytest

from repro.actions import REBOOT, RMA, TRYNOP, default_catalog
from repro.cluster.faults import FaultCatalog, FaultType, validate_fault_catalog
from repro.errors import ConfigurationError


def fault(name="f", primary="error:X", cures=None, weight=1.0, **kwargs):
    return FaultType(
        name=name,
        primary_symptom=primary,
        cure_probabilities=cures or {"REBOOT": 0.8},
        weight=weight,
        **kwargs,
    )


class TestFaultType:
    def test_cure_probability_lookup(self):
        f = fault(cures={"TRYNOP": 0.2, "REBOOT": 0.9})
        assert f.cure_probability(TRYNOP) == pytest.approx(0.2)
        assert f.cure_probability(REBOOT) == pytest.approx(0.9)

    def test_missing_action_raw_probability_is_zero(self):
        assert fault(cures={"REIMAGE": 0.5}).cure_probability(TRYNOP) == 0.0

    def test_manual_action_always_cures(self):
        assert fault(cures={"REIMAGE": 0.5}).cure_probability(RMA) == 1.0

    def test_all_symptoms_starts_with_primary(self):
        f = FaultType(
            name="f",
            primary_symptom="error:X",
            secondary_symptoms=("warn:A",),
        )
        assert f.all_symptoms == ("error:X", "warn:A")

    def test_primary_cannot_repeat_in_secondaries(self):
        with pytest.raises(ConfigurationError):
            FaultType(
                name="f",
                primary_symptom="error:X",
                secondary_symptoms=("error:X",),
            )

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            fault(cures={"REBOOT": 1.5})

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            fault(weight=0.0)


class TestFaultCatalog:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultCatalog([fault("a"), fault("a", primary="error:Y")])

    def test_duplicate_primaries_rejected(self):
        with pytest.raises(ConfigurationError, match="primary"):
            FaultCatalog([fault("a"), fault("b")])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultCatalog([])

    def test_lookup(self):
        catalog = FaultCatalog([fault("a")])
        assert catalog["a"].name == "a"
        with pytest.raises(ConfigurationError):
            catalog["missing"]

    def test_occurrence_probabilities_normalized(self):
        catalog = FaultCatalog(
            [
                fault("a", weight=3.0),
                fault("b", primary="error:Y", weight=1.0),
            ]
        )
        probabilities = catalog.occurrence_probabilities()
        assert probabilities["a"] == pytest.approx(0.75)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_sampling_follows_weights(self):
        catalog = FaultCatalog(
            [
                fault("common", weight=9.0),
                fault("rare", primary="error:Y", weight=1.0),
            ]
        )
        rng = np.random.default_rng(0)
        draws = [catalog.sample(rng).name for _ in range(2000)]
        share = draws.count("common") / len(draws)
        assert 0.85 < share < 0.95


class TestEffectiveCureProbabilities:
    def test_unspecified_inherits_running_maximum(self):
        from repro.cluster.faults import effective_cure_probabilities

        f = fault(cures={"TRYNOP": 0.3, "REBOOT": 0.9})
        effective = effective_cure_probabilities(f, default_catalog())
        assert effective["REIMAGE"] == pytest.approx(0.9)
        assert effective["RMA"] == 1.0

    def test_unspecified_weakest_stays_zero(self):
        from repro.cluster.faults import effective_cure_probabilities

        f = fault(cures={"REIMAGE": 0.8})
        effective = effective_cure_probabilities(f, default_catalog())
        assert effective["TRYNOP"] == 0.0
        assert effective["REBOOT"] == 0.0

    def test_explicit_decrease_rejected(self):
        from repro.cluster.faults import effective_cure_probabilities

        f = fault(cures={"TRYNOP": 0.9, "REIMAGE": 0.2})
        with pytest.raises(ConfigurationError, match="monotone"):
            effective_cure_probabilities(f, default_catalog())


class TestValidationErrorContext:
    """Validation failures must name the offending fault and field —
    a 40-fault generated catalog is undebuggable otherwise."""

    def test_bad_cure_probability_names_fault_and_action(self):
        with pytest.raises(
            ConfigurationError,
            match=r"fault 'flaky'.*cure_probabilities\['REBOOT'\]",
        ):
            fault("flaky", cures={"REBOOT": 1.5})

    def test_bad_secondary_probability_names_fault(self):
        with pytest.raises(
            ConfigurationError, match="fault 'flaky'.*secondary_probability"
        ):
            fault("flaky", secondary_probability=-0.1)

    def test_bad_weight_names_fault(self):
        with pytest.raises(ConfigurationError, match="fault 'flaky'.*weight"):
            fault("flaky", weight=0.0)

    def test_bad_cost_scale_names_fault(self):
        with pytest.raises(
            ConfigurationError, match="fault 'flaky'.*cost_scale"
        ):
            fault("flaky", cost_scale=-1.0)

    def test_repeated_primary_names_fault_and_symptom(self):
        with pytest.raises(
            ConfigurationError, match="fault 'flaky'.*'error:X'"
        ):
            FaultType(
                name="flaky",
                primary_symptom="error:X",
                secondary_symptoms=("error:X",),
            )

    def test_duplicate_names_listed(self):
        with pytest.raises(ConfigurationError, match=r"duplicated: \['a'\]"):
            FaultCatalog([fault("a"), fault("a", primary="error:Y")])

    def test_colliding_primaries_name_both_faults(self):
        with pytest.raises(
            ConfigurationError, match=r"'error:X'.*\['a', 'b'\]"
        ):
            FaultCatalog([fault("a"), fault("b")])

    def test_monotonicity_error_names_fault_and_actions(self):
        catalog = FaultCatalog(
            [fault("hard", cures={"TRYNOP": 0.9, "REBOOT": 0.1})]
        )
        with pytest.raises(
            ConfigurationError, match="fault 'hard'.*REBOOT.*monotone"
        ):
            validate_fault_catalog(catalog, default_catalog())

    def test_unknown_action_error_names_fault_and_action(self):
        catalog = FaultCatalog([fault("hard", cures={"FSCK": 0.5})])
        with pytest.raises(
            ConfigurationError, match="fault 'hard'.*unknown action 'FSCK'"
        ):
            validate_fault_catalog(catalog, default_catalog())


class TestValidateFaultCatalog:
    def test_monotone_cures_pass(self):
        catalog = FaultCatalog(
            [fault("a", cures={"TRYNOP": 0.1, "REBOOT": 0.5, "REIMAGE": 0.9})]
        )
        validate_fault_catalog(catalog, default_catalog())

    def test_decreasing_cures_rejected(self):
        catalog = FaultCatalog(
            [fault("a", cures={"TRYNOP": 0.9, "REBOOT": 0.1})]
        )
        with pytest.raises(ConfigurationError, match="monotone"):
            validate_fault_catalog(catalog, default_catalog())

    def test_unknown_action_rejected(self):
        catalog = FaultCatalog([fault("a", cures={"FSCK": 0.5})])
        with pytest.raises(ConfigurationError, match="unknown action"):
            validate_fault_catalog(catalog, default_catalog())


# ---------------------------------------------------------------------------
# Property-based invariants (hypothesis)
# ---------------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import CompiledFaults, compile_fault_arrays
from repro.util.rng import make_rng


@st.composite
def random_catalogs(draw):
    count = draw(st.integers(1, 6))
    faults = []
    for fid in range(count):
        cures = {}
        running = 0.0
        for name in ("TRYNOP", "REBOOT", "REIMAGE"):
            running = max(running, draw(st.floats(0.0, 1.0, allow_nan=False)))
            if draw(st.booleans()):
                cures[name] = running
        faults.append(
            fault(
                name=f"f{fid}",
                primary=f"error:P{fid}",
                cures=cures,
                weight=draw(st.floats(0.05, 20.0, allow_nan=False)),
                secondary_symptoms=tuple(
                    f"warn:P{fid}s{k}" for k in range(draw(st.integers(0, 3)))
                ),
                secondary_probability=draw(st.floats(0.0, 1.0, allow_nan=False)),
                cost_scale=draw(st.floats(0.1, 5.0, allow_nan=False)),
            )
        )
    return FaultCatalog(faults)


class TestCatalogProperties:
    @given(catalog=random_catalogs())
    @settings(max_examples=60, deadline=None)
    def test_occurrence_probabilities_normalized(self, catalog):
        probabilities = catalog.occurrence_probabilities()
        assert all(p > 0 for p in probabilities.values())
        assert np.isclose(sum(probabilities.values()), 1.0)

    @given(catalog=random_catalogs())
    @settings(max_examples=60, deadline=None)
    def test_cumulative_monotone_and_complete(self, catalog):
        cumulative = catalog.cumulative_probabilities()
        assert np.all(np.diff(cumulative) >= 0)
        assert np.isclose(cumulative[-1], 1.0)
        # The returned array is a copy: mutating it must not perturb
        # subsequent sampling.
        cumulative[:] = 0.0
        assert np.isclose(catalog.cumulative_probabilities()[-1], 1.0)

    @given(
        catalog=random_catalogs(),
        u=st.floats(0.0, 1.0, exclude_max=True, allow_nan=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_index_from_uniform_is_inverse_cdf(self, catalog, u):
        """The scalar and vector forms agree, stay in range, and invert
        the cumulative distribution."""
        index = catalog.index_from_uniform(u)
        assert 0 <= index < len(catalog)
        cumulative = catalog.cumulative_probabilities()
        if index > 0:
            assert u >= cumulative[index - 1]
        if index < len(catalog) - 1:
            assert u < cumulative[index]
        vector = catalog.index_from_uniform(np.array([u]))
        assert vector.dtype == np.intp
        assert int(vector[0]) == index

    @given(catalog=random_catalogs(), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_sample_index_in_range(self, catalog, seed):
        rng = make_rng(seed)
        for _ in range(5):
            assert 0 <= catalog.sample_index(rng) < len(catalog)


class TestCompiledFaultsProperties:
    @given(catalog=random_catalogs())
    @settings(max_examples=60, deadline=None)
    def test_cure_matrix_monotone_in_strength(self, catalog):
        """Hypothesis 2 compiled: every row is non-decreasing along the
        strength order and the manual column is exactly 1."""
        actions = default_catalog()
        compiled = compile_fault_arrays(catalog, actions)
        assert isinstance(compiled, CompiledFaults)
        assert compiled.cure.shape == (len(catalog), len(actions.by_strength()))
        assert np.all(np.diff(compiled.cure, axis=1) >= 0)
        manual_column = [
            aid
            for aid, action in enumerate(actions.by_strength())
            if action.manual
        ]
        assert np.all(compiled.cure[:, manual_column] == 1.0)

    @given(catalog=random_catalogs())
    @settings(max_examples=60, deadline=None)
    def test_compiled_arrays_mirror_catalog(self, catalog):
        compiled = compile_fault_arrays(catalog, default_catalog())
        assert compiled.fault_count == len(catalog)
        assert compiled.primary_symptoms == tuple(
            f.primary_symptom for f in catalog
        )
        assert np.array_equal(
            compiled.cumulative, catalog.cumulative_probabilities()
        )
        assert np.array_equal(
            compiled.cost_scale, np.array([f.cost_scale for f in catalog])
        )
        assert compiled.max_secondaries == max(
            (len(f.secondary_symptoms) for f in catalog), default=0
        )

    @given(catalog=random_catalogs(), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_index_from_uniform_matches_compiled_cumulative(
        self, catalog, seed
    ):
        """One batch of uniforms maps identically through the catalog's
        scalar path and the compiled cumulative array — the agreement
        the fleet backend's onset wave relies on."""
        compiled = compile_fault_arrays(catalog, default_catalog())
        uniforms = make_rng(seed).random(64)
        vector = catalog.index_from_uniform(uniforms)
        by_compiled = np.minimum(
            np.searchsorted(compiled.cumulative, uniforms, side="right"),
            compiled.fault_count - 1,
        )
        assert np.array_equal(vector, by_compiled)
        for u, index in zip(uniforms, vector):
            assert catalog.index_from_uniform(float(u)) == int(index)
