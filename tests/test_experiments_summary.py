"""Tests for the one-call reproduction summary (small-scale)."""

import pytest

from repro.core.config import PipelineConfig
from repro.experiments.scenario import build_scenario
from repro.experiments.summary import reproduction_summary
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig
from repro.tracegen.workload import small_config


@pytest.fixture(scope="module")
def summary():
    scenario = build_scenario(small_config(seed=23), top_k=6)
    config = PipelineConfig(
        top_k_types=6,
        qlearning=QLearningConfig(max_sweeps=90, episodes_per_sweep=16),
        tree=SelectionTreeConfig(min_sweeps=30, check_interval=15),
    )
    return reproduction_summary(
        scenario,
        config=config,
        fractions=(0.5,),
        include_training_time=False,
    )


class TestReproductionSummary:
    def test_covers_headline_figures(self, summary):
        figures = {row.figure for row in summary.rows}
        assert {"Sec 4.1", "Fig 3", "Fig 7", "Fig 9", "Fig 10",
                "Fig 12"} <= figures

    def test_rows_carry_both_sides(self, summary):
        for row in summary.rows:
            assert row.paper
            assert row.measured

    def test_render_contains_verdict(self, summary):
        text = summary.render()
        assert "Reproduction summary" in text
        assert "=>" in text

    def test_shape_flags_are_booleans(self, summary):
        assert all(isinstance(r.shape_holds, bool) for r in summary.rows)

    def test_small_scale_coverage_shapes_hold(self, summary):
        # At miniature scale only noise/coverage-style shapes must hold;
        # the paper-band totals are checked at benchmark scale.  Make
        # sure at least the data-description rows pass here.
        by_figure = {row.figure: row for row in summary.rows}
        assert by_figure["Fig 3"].shape_holds
        assert by_figure["Fig 10"].shape_holds
