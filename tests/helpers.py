"""Shared builders for tests: compact construction of processes and logs."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.recoverylog.entry import LogEntry
from repro.recoverylog.log import RecoveryLog
from repro.recoverylog.process import RecoveryProcess

DEFAULT_STEP = 600.0


def make_process(
    actions: Sequence[str],
    *,
    machine: str = "m-test",
    error_type: str = "error:X",
    start: float = 0.0,
    step: float = DEFAULT_STEP,
    durations: Optional[Sequence[float]] = None,
    extra_symptoms: Sequence[str] = (),
    detection_delay: float = 60.0,
) -> RecoveryProcess:
    """Build a recovery process with controlled attempt durations.

    The first symptom fires at ``start``; the first action after
    ``detection_delay``; each attempt lasts ``durations[i]`` (or ``step``
    for all when omitted); success closes the final attempt.
    ``extra_symptoms`` are emitted right after the initial one.
    """
    if durations is None:
        durations = [step] * len(actions)
    if len(durations) != len(actions):
        raise ValueError("durations must match actions")
    entries: List[LogEntry] = [LogEntry.symptom(start, machine, error_type)]
    for offset, symptom in enumerate(extra_symptoms, start=1):
        entries.append(
            LogEntry.symptom(start + offset * 1.0, machine, symptom)
        )
    time = start + detection_delay
    for action, duration in zip(actions, durations):
        entries.append(LogEntry.action(time, machine, action))
        time += duration
    entries.append(LogEntry.success(time, machine))
    return RecoveryProcess(machine, tuple(entries))


def make_log(processes: Iterable[RecoveryProcess]) -> RecoveryLog:
    """Flatten processes back into a raw log."""
    log = RecoveryLog()
    for process in processes:
        log.extend(process.entries)
    return log


#: Realistic per-action attempt durations for ladder fixtures (seconds).
ACTION_DURATIONS = {
    "TRYNOP": 300.0,
    "REBOOT": 2_700.0,
    "REIMAGE": 7_200.0,
    "RMA": 172_800.0,
}


def ladder_processes(
    error_type: str,
    counts: Sequence[Tuple[Sequence[str], int]],
    *,
    machine_prefix: str = "m",
    gap: float = 500_000.0,
    step: Optional[float] = None,
    realistic_durations: bool = False,
) -> List[RecoveryProcess]:
    """Build ``n`` copies of each action sequence, spaced in time.

    ``counts`` is ``[(action sequence, copies), ...]``.  Each process
    lands on its own machine so segmentation stays trivial.  With
    ``realistic_durations`` each attempt lasts its action's nominal
    duration (TRYNOP cheap, RMA days); otherwise every attempt lasts
    ``step`` (default 600 s).
    """
    processes = []
    index = 0
    for sequence, copies in counts:
        if realistic_durations:
            durations = [ACTION_DURATIONS[a] for a in sequence]
        else:
            durations = [step if step is not None else DEFAULT_STEP] * len(
                sequence
            )
        for _ in range(copies):
            processes.append(
                make_process(
                    sequence,
                    machine=f"{machine_prefix}-{index:04d}",
                    error_type=error_type,
                    start=index * gap,
                    durations=durations,
                )
            )
            index += 1
    return processes
