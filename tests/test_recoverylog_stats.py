"""Tests for repro.recoverylog.stats."""

import pytest

from helpers import ladder_processes
from repro.recoverylog.stats import compute_statistics


@pytest.fixture
def mixed_processes():
    return ladder_processes(
        "error:A", [(["TRYNOP"], 6), (["TRYNOP", "REBOOT"], 2)]
    ) + ladder_processes(
        "error:B", [(["REIMAGE"], 2)], machine_prefix="n"
    )


class TestComputeStatistics:
    def test_process_count(self, mixed_processes):
        stats = compute_statistics(mixed_processes)
        assert stats.process_count == 10

    def test_counts_by_type(self, mixed_processes):
        stats = compute_statistics(mixed_processes)
        assert stats.counts_by_type == {"error:A": 8, "error:B": 2}

    def test_downtime_accumulates(self, mixed_processes):
        stats = compute_statistics(mixed_processes)
        # 6 single-action (660s) + 2 two-action (1260s) processes.
        assert stats.downtime_by_type["error:A"] == pytest.approx(
            6 * 660.0 + 2 * 1260.0
        )

    def test_action_counts(self, mixed_processes):
        stats = compute_statistics(mixed_processes)
        assert stats.action_counts == {
            "TRYNOP": 8,
            "REBOOT": 2,
            "REIMAGE": 2,
        }

    def test_mean_downtime(self, mixed_processes):
        stats = compute_statistics(mixed_processes)
        assert stats.mean_downtime == pytest.approx(
            stats.total_downtime / 10
        )

    def test_error_types_ranked_by_count(self, mixed_processes):
        stats = compute_statistics(mixed_processes)
        assert stats.error_types == ("error:A", "error:B")

    def test_rank_tie_breaks_by_name(self):
        processes = ladder_processes(
            "error:B", [(["TRYNOP"], 3)]
        ) + ladder_processes("error:A", [(["TRYNOP"], 3)], machine_prefix="n")
        stats = compute_statistics(processes)
        assert stats.error_types == ("error:A", "error:B")

    def test_top_types_and_coverage(self, mixed_processes):
        stats = compute_statistics(mixed_processes)
        assert stats.top_types(1) == ("error:A",)
        assert stats.coverage_of_top(1) == pytest.approx(0.8)
        assert stats.coverage_of_top(2) == pytest.approx(1.0)

    def test_mean_downtime_by_type(self, mixed_processes):
        stats = compute_statistics(mixed_processes)
        means = stats.mean_downtime_by_type()
        assert means["error:B"] == pytest.approx(660.0)

    def test_empty_ensemble(self):
        stats = compute_statistics([])
        assert stats.process_count == 0
        assert stats.mean_downtime == 0.0
        assert stats.coverage_of_top(5) == 1.0
