"""Tests for linear Q-function approximation (the paper's extension)."""

import numpy as np
import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.errors import ConfigurationError, TrainingError
from repro.learning.approximation import (
    ApproximateQLearningTrainer,
    ApproximateTrainingConfig,
    LinearQFunction,
)
from repro.mdp.state import RecoveryState
from repro.simplatform.platform import SimulationPlatform

CATALOG = default_catalog()
STRENGTHS = {a.name: a.strength for a in CATALOG}
S0 = RecoveryState.initial("error:X")


def make_qfunction(**kwargs):
    return LinearQFunction(CATALOG.names(), STRENGTHS, **kwargs)


class TestLinearQFunction:
    def test_initial_values_zero(self):
        q = make_qfunction()
        assert q.value(S0, "TRYNOP") == 0.0

    def test_feature_dimension(self):
        q = make_qfunction()
        assert q.dimension == 1 + 4 + 4 + 3
        assert q.features(S0, "REBOOT").shape == (q.dimension,)

    def test_features_distinguish_actions(self):
        q = make_qfunction()
        a = q.features(S0, "TRYNOP")
        b = q.features(S0, "REBOOT")
        assert not np.allclose(a, b)

    def test_features_encode_history(self):
        q = make_qfunction()
        deeper = S0.after("REBOOT", False)
        a = q.features(S0, "REBOOT")
        b = q.features(deeper, "REBOOT")
        assert not np.allclose(a, b)
        # The repeat indicator fires only when the action already failed.
        assert b[-1] == 1.0
        assert a[-1] == 0.0

    def test_update_moves_prediction_toward_target(self):
        q = make_qfunction(learning_rate=0.5)
        before = q.value(S0, "REBOOT")
        for _ in range(200):
            q.update(S0, "REBOOT", 3_600.0)
        after = q.value(S0, "REBOOT")
        assert abs(after - 3_600.0) < abs(before - 3_600.0)
        assert after == pytest.approx(3_600.0, rel=0.1)

    def test_update_counts(self):
        q = make_qfunction()
        q.update(S0, "TRYNOP", 100.0)
        assert q.updates == 1

    def test_generalizes_to_unseen_state(self):
        q = make_qfunction(learning_rate=0.5)
        for _ in range(200):
            q.update(S0, "REBOOT", 3_600.0)
        unseen = RecoveryState.initial("error:X").after("TRYNOP", False)
        # Shared weights give a finite, related prediction (not 0).
        assert q.value(unseen, "REBOOT") > 1_000.0

    def test_greedy_action(self):
        q = make_qfunction(learning_rate=0.5)
        for _ in range(100):
            q.update(S0, "TRYNOP", 600.0)
            q.update(S0, "RMA", 100_000.0)
        action, value = q.greedy_action(S0)
        assert action != "RMA"

    def test_min_value_terminal_zero(self):
        q = make_qfunction()
        terminal = S0.after("RMA", True)
        assert q.min_value(terminal) == 0.0

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            make_qfunction().value(S0, "FSCK")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"learning_rate": 2.0},
            {"cost_scale": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_qfunction(**kwargs)


class TestApproximateTrainer:
    @pytest.fixture(scope="class")
    def setup(self):
        hard = ladder_processes(
            "error:Hard",
            [
                (["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 30),
                (["TRYNOP", "REBOOT"], 2),
            ],
            realistic_durations=True,
        )
        soft = ladder_processes(
            "error:Soft",
            [(["TRYNOP"], 20), (["TRYNOP", "REBOOT"], 10)],
            realistic_durations=True,
        )
        platform = SimulationPlatform(hard + soft, CATALOG)
        return platform, hard, soft

    def test_learns_reimage_jump(self, setup):
        platform, hard, _soft = setup
        trainer = ApproximateQLearningTrainer(platform)
        result = trainer.train_type("error:Hard", hard)
        s0 = RecoveryState.initial("error:Hard")
        assert result.rules[s0][0] == "REIMAGE"

    def test_learns_watch_first(self, setup):
        platform, _hard, soft = setup
        trainer = ApproximateQLearningTrainer(platform)
        result = trainer.train_type("error:Soft", soft)
        s0 = RecoveryState.initial("error:Soft")
        assert result.rules[s0][0] == "TRYNOP"

    def test_rules_cover_full_chain(self, setup):
        platform, hard, _soft = setup
        trainer = ApproximateQLearningTrainer(platform)
        result = trainer.train_type("error:Hard", hard)
        assert len(result.rules) == platform.max_actions - 1

    def test_policy_beats_ladder_on_hard_type(self, setup):
        platform, hard, _soft = setup
        from repro.evaluation.evaluator import PolicyEvaluator
        from repro.policies import TrainedPolicy

        trainer = ApproximateQLearningTrainer(platform)
        result = trainer.train_type("error:Hard", hard)
        policy = TrainedPolicy(result.rules, label="approx")
        evaluator = PolicyEvaluator(hard, CATALOG)
        evaluation = evaluator.evaluate(policy)
        assert evaluation.overall_relative_cost < 0.85

    def test_empty_processes_rejected(self, setup):
        platform, _hard, _soft = setup
        trainer = ApproximateQLearningTrainer(platform)
        with pytest.raises(TrainingError):
            trainer.train_type("error:X", [])

    def test_parameter_count_far_below_table(self, setup):
        platform, hard, _soft = setup
        trainer = ApproximateQLearningTrainer(platform)
        result = trainer.train_type("error:Hard", hard)
        # The generalization selling point: constant parameter count.
        assert result.qfunction.dimension < 20

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproximateTrainingConfig(sweeps=0)
        with pytest.raises(ConfigurationError):
            ApproximateTrainingConfig(episodes_per_sweep=0)
