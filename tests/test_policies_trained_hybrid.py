"""Tests for the trained and hybrid policies."""

import pytest

from repro.actions import default_catalog
from repro.errors import ConfigurationError, UnhandledStateError
from repro.mdp.state import RecoveryState
from repro.policies.hybrid import HybridPolicy
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy

CATALOG = default_catalog()
S0 = RecoveryState.initial("error:X")
S1 = S0.after("REIMAGE", False)


@pytest.fixture
def trained():
    return TrainedPolicy(
        {
            S0: ("REIMAGE", 7200.0),
            S1: ("RMA", 172800.0),
        }
    )


class TestTrainedPolicy:
    def test_follows_rules(self, trained):
        decision = trained.decide(S0)
        assert decision.action == "REIMAGE"
        assert decision.expected_cost == pytest.approx(7200.0)
        assert decision.source == "trained"

    def test_unhandled_state_raises(self, trained):
        unknown = RecoveryState.initial("error:Other")
        with pytest.raises(UnhandledStateError) as excinfo:
            trained.decide(unknown)
        assert excinfo.value.state == unknown

    def test_handles_and_len(self, trained):
        assert trained.handles(S0)
        assert not trained.handles(RecoveryState.initial("error:Other"))
        assert len(trained) == 2

    def test_error_types(self, trained):
        assert trained.error_types() == ("error:X",)

    def test_expected_cost_lookup(self, trained):
        assert trained.expected_cost(S1) == pytest.approx(172800.0)
        assert trained.expected_cost(RecoveryState.initial("e:Y")) is None

    def test_terminal_rule_rejected(self):
        terminal = S0.after("RMA", True)
        with pytest.raises(ConfigurationError):
            TrainedPolicy({terminal: ("RMA", 0.0)})

    def test_terminal_decide_rejected(self, trained):
        with pytest.raises(ConfigurationError):
            trained.decide(S0.after("RMA", True))

    def test_empty_action_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainedPolicy({S0: ("", 0.0)})

    def test_custom_label(self):
        policy = TrainedPolicy({}, label="with-tree")
        assert policy.name == "with-tree"


class TestHybridPolicy:
    def test_prefers_trained(self, trained):
        hybrid = HybridPolicy(trained, UserDefinedPolicy(CATALOG))
        decision = hybrid.decide(S0)
        assert decision.action == "REIMAGE"
        assert decision.source == "hybrid:trained"

    def test_falls_back_on_unhandled(self, trained):
        hybrid = HybridPolicy(trained, UserDefinedPolicy(CATALOG))
        unknown = RecoveryState.initial("error:Other")
        decision = hybrid.decide(unknown)
        assert decision.action == "TRYNOP"
        assert decision.source == "hybrid:user-defined"

    def test_fallback_rate_tracking(self, trained):
        hybrid = HybridPolicy(trained, UserDefinedPolicy(CATALOG))
        hybrid.decide(S0)
        hybrid.decide(RecoveryState.initial("error:Other"))
        assert hybrid.fallback_rate == pytest.approx(0.5)

    def test_fallback_rate_empty(self, trained):
        hybrid = HybridPolicy(trained, UserDefinedPolicy(CATALOG))
        assert hybrid.fallback_rate == 0.0

    def test_covers_everything_the_fallback_covers(self, trained):
        hybrid = HybridPolicy(trained, UserDefinedPolicy(CATALOG))
        # Walk an unknown type to terminal depth: never raises.
        state = RecoveryState.initial("error:Unknown")
        for _ in range(10):
            action = hybrid.decide(state).action
            state = state.after(action, False)
        assert state.attempt_count == 10

    def test_accessors(self, trained):
        fallback = UserDefinedPolicy(CATALOG)
        hybrid = HybridPolicy(trained, fallback)
        assert hybrid.trained is trained
        assert hybrid.fallback is fallback
        assert hybrid.name == "hybrid"
