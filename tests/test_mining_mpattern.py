"""Tests for the m-pattern miner, including hypothesis property tests."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.mining.mpattern import (
    is_m_pattern,
    maximal_patterns,
    mine_m_patterns,
    mine_m_patterns_from_counts,
)


def T(*sets):
    return [frozenset(s) for s in sets]


class TestIsMPattern:
    def test_perfect_cooccurrence(self):
        transactions = T({"a", "b"}, {"a", "b"}, {"c"})
        assert is_m_pattern({"a", "b"}, transactions, 1.0)

    def test_partial_cooccurrence(self):
        transactions = T({"a", "b"}, {"a"}, {"b"})
        assert is_m_pattern({"a", "b"}, transactions, 0.5)
        assert not is_m_pattern({"a", "b"}, transactions, 0.6)

    def test_absent_item_fails(self):
        assert not is_m_pattern({"zzz"}, T({"a"}), 0.1)

    def test_empty_pattern_rejected(self):
        with pytest.raises(MiningError):
            is_m_pattern([], T({"a"}), 0.5)

    def test_singletons_trivially_m_patterns(self):
        assert is_m_pattern({"a"}, T({"a"}, {"a", "b"}), 1.0)


class TestMineMPatterns:
    def test_finds_cohesive_pair(self):
        transactions = T(*[{"a", "b"}] * 9, {"a"})
        patterns = mine_m_patterns(transactions, 0.5)
        assert frozenset({"a", "b"}) in patterns

    def test_respects_minp(self):
        transactions = T({"a", "b"}, {"a"}, {"a"}, {"b"})
        assert frozenset({"a", "b"}) not in mine_m_patterns(transactions, 0.5)

    def test_finds_triple(self):
        transactions = T(*[{"x", "y", "z"}] * 5, {"q"})
        patterns = mine_m_patterns(transactions, 0.9)
        assert frozenset({"x", "y", "z"}) in patterns

    def test_infrequent_but_correlated_found(self):
        # The m-pattern selling point: {a, b} occurs in only 2 of 100
        # transactions but is perfectly mutually dependent.
        transactions = T({"a", "b"}, {"a", "b"}) + [
            frozenset({f"noise{i}"}) for i in range(98)
        ]
        patterns = mine_m_patterns(transactions, 1.0)
        assert frozenset({"a", "b"}) in patterns

    def test_min_size_one_reports_singletons(self):
        patterns = mine_m_patterns(T({"a"}, {"b"}), 0.5, min_size=1)
        assert frozenset({"a"}) in patterns

    def test_max_size_limits_search(self):
        transactions = T(*[{"x", "y", "z"}] * 5)
        patterns = mine_m_patterns(transactions, 0.9, max_size=2)
        assert all(len(p) <= 2 for p in patterns)

    def test_min_support_count(self):
        transactions = T({"a", "b"}, {"c", "d"}, {"c", "d"})
        patterns = mine_m_patterns(
            transactions, 0.5, min_support_count=2
        )
        assert frozenset({"a", "b"}) not in patterns
        assert frozenset({"c", "d"}) in patterns

    def test_zero_minp_rejected(self):
        with pytest.raises(MiningError):
            mine_m_patterns(T({"a"}), 0.0)


symptom = st.sampled_from(["a", "b", "c", "d", "e"])
transaction = st.frozensets(symptom, min_size=1, max_size=4)
transactions_strategy = st.lists(transaction, min_size=1, max_size=25)
minp_strategy = st.sampled_from([0.2, 0.4, 0.6, 0.8, 1.0])


class TestMinerProperties:
    @given(transactions=transactions_strategy, minp=minp_strategy)
    @settings(max_examples=60, deadline=None)
    def test_miner_matches_reference_check(self, transactions, minp):
        """Every mined pattern satisfies the definitional check."""
        for pattern in mine_m_patterns(transactions, minp):
            assert is_m_pattern(pattern, transactions, minp)

    @given(transactions=transactions_strategy, minp=minp_strategy)
    @settings(max_examples=60, deadline=None)
    def test_miner_is_complete_for_pairs(self, transactions, minp):
        """Every dependent pair is found (completeness at level 2)."""
        mined = set(mine_m_patterns(transactions, minp, max_size=2))
        items = sorted({i for t in transactions for i in t})
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                if is_m_pattern({a, b}, transactions, minp):
                    assert frozenset({a, b}) in mined

    @given(transactions=transactions_strategy, minp=minp_strategy)
    @settings(max_examples=60, deadline=None)
    def test_downward_closure(self, transactions, minp):
        """Subsets of mined patterns are themselves m-patterns."""
        for pattern in mine_m_patterns(transactions, minp):
            for item in pattern:
                subset = pattern - {item}
                if subset:
                    assert is_m_pattern(subset, transactions, minp)

    @given(transactions=transactions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_minp(self, transactions):
        """Raising minp never adds patterns."""
        loose = set(mine_m_patterns(transactions, 0.3))
        strict = set(mine_m_patterns(transactions, 0.8))
        assert strict <= loose


class TestMaximalPatterns:
    def test_drops_contained_patterns(self):
        patterns = [
            frozenset({"a"}),
            frozenset({"a", "b"}),
            frozenset({"c"}),
        ]
        maximal = maximal_patterns(patterns)
        assert frozenset({"a"}) not in maximal
        assert frozenset({"a", "b"}) in maximal
        assert frozenset({"c"}) in maximal

    def test_duplicates_collapsed(self):
        patterns = [frozenset({"a"}), frozenset({"a"})]
        assert maximal_patterns(patterns) == [frozenset({"a"})]

    def test_empty_input(self):
        assert maximal_patterns([]) == []


class TestCountedMiner:
    def test_counted_equals_expanded_sequence(self):
        transactions = [
            frozenset({"a", "b"}),
            frozenset({"a", "b"}),
            frozenset({"a", "b", "c"}),
            frozenset({"c"}),
            frozenset({"a"}),
        ]
        counts = Counter(transactions)
        for minp in (0.2, 0.5, 0.8, 1.0):
            expanded = mine_m_patterns(transactions, minp)
            counted = mine_m_patterns_from_counts(counts, minp)
            assert sorted(counted, key=sorted) == sorted(
                expanded, key=sorted
            )

    def test_multiplicity_matters(self):
        # Two copies of {a, b} against one lone {a}: pair dependence
        # of (a, b) is 2/3, which clears minp=0.6 only because the
        # duplicate is weighted.
        counts = Counter(
            {frozenset({"a", "b"}): 2, frozenset({"a"}): 1}
        )
        assert frozenset({"a", "b"}) in mine_m_patterns_from_counts(
            counts, 0.6
        )
        assert frozenset({"a", "b"}) not in mine_m_patterns_from_counts(
            Counter({frozenset({"a", "b"}): 1, frozenset({"a"}): 1}), 0.6
        )

    def test_min_support_count_uses_weighted_support(self):
        counts = Counter({frozenset({"a", "b"}): 3})
        assert mine_m_patterns_from_counts(
            counts, 0.5, min_support_count=3
        )
        assert not mine_m_patterns_from_counts(
            counts, 0.5, min_support_count=4
        )
