"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.recoverylog.io import write_log_jsonl


@pytest.fixture(scope="module")
def log_path(tmp_path_factory, small_trace):
    path = tmp_path_factory.mktemp("cli") / "cluster.jsonl"
    write_log_jsonl(small_trace.log, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x.jsonl", "--scale", "small"]
        )
        assert args.command == "generate"
        assert args.scale == "small"


class TestGenerate:
    def test_generate_jsonl(self, tmp_path, capsys):
        out = tmp_path / "log.jsonl"
        code = main(
            ["generate", "--out", str(out), "--scale", "small",
             "--seed", "3"]
        )
        assert code == 0
        assert out.exists()
        assert "recovery processes" in capsys.readouterr().out

    def test_generate_text(self, tmp_path, capsys):
        out = tmp_path / "log.tsv"
        code = main(
            ["generate", "--out", str(out), "--scale", "small",
             "--format", "text", "--seed", "3"]
        )
        assert code == 0
        first = out.read_text().splitlines()[0]
        assert len(first.split("\t")) == 3


class TestInspect:
    def test_inspect_prints_calibration(self, log_path, capsys):
        assert main(["inspect", "--log", log_path]) == 0
        out = capsys.readouterr().out
        assert "Trace calibration" in out
        assert "Repair-action usage" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["inspect", "--log", "/nonexistent.jsonl"]) == 1
        assert "error" in capsys.readouterr().err


class TestMine:
    def test_mine_reports_clusters(self, log_path, capsys):
        assert main(["mine", "--log", log_path]) == 0
        out = capsys.readouterr().out
        assert "symptom clusters" in out
        assert "coverage" in out


class TestTrainEvaluate:
    def test_train_then_evaluate(self, log_path, tmp_path, capsys):
        policy_path = tmp_path / "policy.json"
        code = main(
            [
                "train",
                "--log", log_path,
                "--out", str(policy_path),
                "--fraction", "0.5",
                "--top-k", "3",
            ]
        )
        assert code == 0
        assert policy_path.exists()
        out = capsys.readouterr().out
        assert "state-action rules" in out

        code = main(
            [
                "evaluate",
                "--log", log_path,
                "--policy", str(policy_path),
                "--fraction", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "user-defined" in out
        assert "hybrid" in out


class TestExperiment:
    @pytest.mark.parametrize("figure", ["table1", "fig3", "fig5", "fig6"])
    def test_light_figures_on_small_scale(self, figure, capsys):
        code = main(
            ["experiment", "--figure", figure, "--scale", "small",
             "--seed", "13"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip()
