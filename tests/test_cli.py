"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.recoverylog.io import write_log_jsonl


@pytest.fixture(scope="module")
def log_path(tmp_path_factory, small_trace):
    path = tmp_path_factory.mktemp("cli") / "cluster.jsonl"
    write_log_jsonl(small_trace.log, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x.jsonl", "--scale", "small"]
        )
        assert args.command == "generate"
        assert args.scale == "small"


class TestGenerate:
    def test_generate_jsonl(self, tmp_path, capsys):
        out = tmp_path / "log.jsonl"
        code = main(
            ["generate", "--out", str(out), "--scale", "small",
             "--seed", "3"]
        )
        assert code == 0
        assert out.exists()
        assert "recovery processes" in capsys.readouterr().out

    def test_generate_text(self, tmp_path, capsys):
        out = tmp_path / "log.tsv"
        code = main(
            ["generate", "--out", str(out), "--scale", "small",
             "--format", "text", "--seed", "3"]
        )
        assert code == 0
        first = out.read_text().splitlines()[0]
        assert len(first.split("\t")) == 3


class TestInspect:
    def test_inspect_prints_calibration(self, log_path, capsys):
        assert main(["inspect", "--log", log_path]) == 0
        out = capsys.readouterr().out
        assert "Trace calibration" in out
        assert "Repair-action usage" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["inspect", "--log", "/nonexistent.jsonl"]) == 1
        assert "error" in capsys.readouterr().err


class TestMine:
    def test_mine_reports_clusters(self, log_path, capsys):
        assert main(["mine", "--log", log_path]) == 0
        out = capsys.readouterr().out
        assert "symptom clusters" in out
        assert "coverage" in out


class TestTrainEvaluate:
    def test_train_then_evaluate(self, log_path, tmp_path, capsys):
        policy_path = tmp_path / "policy.json"
        code = main(
            [
                "train",
                "--log", log_path,
                "--out", str(policy_path),
                "--fraction", "0.5",
                "--top-k", "3",
            ]
        )
        assert code == 0
        assert policy_path.exists()
        out = capsys.readouterr().out
        assert "state-action rules" in out

        code = main(
            [
                "evaluate",
                "--log", log_path,
                "--policy", str(policy_path),
                "--fraction", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "user-defined" in out
        assert "hybrid" in out


class TestTrainParallelFlags:
    def test_train_reports_worker_count(self, log_path, tmp_path, capsys):
        policy_path = tmp_path / "policy.json"
        code = main(
            [
                "train",
                "--log", log_path,
                "--out", str(policy_path),
                "--top-k", "2",
                "--workers", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workers=1" in out
        assert "episodes" in out

    def test_resume_requires_checkpoint_dir(self, log_path, tmp_path,
                                            capsys):
        code = main(
            [
                "train",
                "--log", log_path,
                "--out", str(tmp_path / "policy.json"),
                "--resume",
            ]
        )
        assert code == 1
        assert "checkpoint_dir" in capsys.readouterr().err

    def test_resumed_run_reuses_checkpoints_and_policy(
        self, log_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        first_policy = tmp_path / "first.json"
        second_policy = tmp_path / "second.json"
        base = [
            "train",
            "--log", log_path,
            "--top-k", "2",
            "--checkpoint-dir", str(ckpt),
        ]
        assert main(base + ["--out", str(first_policy)]) == 0
        first_out = capsys.readouterr().out
        assert "error types from checkpoints" not in first_out
        assert any(ckpt.glob("*.json"))

        assert main(base + ["--out", str(second_policy), "--resume"]) == 0
        second_out = capsys.readouterr().out
        assert "resumed 2 error types" in second_out
        assert "trained 0 error types" in second_out
        # The resumed policy is byte-identical to the fresh one.
        assert second_policy.read_text() == first_policy.read_text()

    @pytest.mark.slow
    def test_parallel_train_produces_identical_policy(
        self, log_path, tmp_path, capsys
    ):
        serial_policy = tmp_path / "serial.json"
        parallel_policy = tmp_path / "parallel.json"
        base = ["train", "--log", log_path, "--top-k", "2"]
        assert main(base + ["--out", str(serial_policy)]) == 0
        assert main(
            base + ["--out", str(parallel_policy), "--workers", "2"]
        ) == 0
        assert "workers=2" in capsys.readouterr().out
        assert parallel_policy.read_text() == serial_policy.read_text()


class TestExperiment:
    @pytest.mark.parametrize("figure", ["table1", "fig3", "fig5", "fig6"])
    def test_light_figures_on_small_scale(self, figure, capsys):
        code = main(
            ["experiment", "--figure", figure, "--scale", "small",
             "--seed", "13"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip()


class TestLogFormatFlag:
    @pytest.fixture(scope="class")
    def jsonl_with_log_suffix(self, tmp_path_factory, small_trace):
        # Regression: JSONL content behind a .log suffix must parse as
        # JSONL on every log-consuming subcommand (the old reader chose
        # the parser from the extension and exploded here).
        path = tmp_path_factory.mktemp("fmt") / "cluster.log"
        write_log_jsonl(small_trace.log, path)
        return str(path)

    def test_inspect_sniffs_jsonl_in_dot_log(
        self, jsonl_with_log_suffix, capsys
    ):
        assert main(["inspect", "--log", jsonl_with_log_suffix]) == 0
        assert "Trace calibration" in capsys.readouterr().out

    def test_mine_sniffs_jsonl_in_dot_log(
        self, jsonl_with_log_suffix, capsys
    ):
        assert main(["mine", "--log", jsonl_with_log_suffix]) == 0
        assert "symptom clusters" in capsys.readouterr().out

    def test_explicit_format_overrides_sniffing(
        self, jsonl_with_log_suffix, capsys
    ):
        assert main(
            ["mine", "--log", jsonl_with_log_suffix,
             "--log-format", "jsonl"]
        ) == 0
        capsys.readouterr()

    def test_wrong_explicit_format_is_error(
        self, jsonl_with_log_suffix, capsys
    ):
        assert main(
            ["mine", "--log", jsonl_with_log_suffix,
             "--log-format", "text"]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_format_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "--log", "x", "--log-format", "xml"]
            )


class TestMineStream:
    def test_stream_matches_eager_report(self, log_path, capsys):
        assert main(["mine", "--log", log_path]) == 0
        eager_out = capsys.readouterr().out
        assert main(["mine", "--log", log_path, "--stream"]) == 0
        stream_out = capsys.readouterr().out
        eager_head = eager_out.splitlines()[:2]
        stream_head = stream_out.splitlines()[:2]
        assert eager_head == stream_head  # clusters + noise lines agree
        assert "streamed" in stream_out

    def test_stream_chunk_size_does_not_change_report(
        self, log_path, capsys
    ):
        assert main(["mine", "--log", log_path, "--stream"]) == 0
        default_out = capsys.readouterr().out
        assert main(
            ["mine", "--log", log_path, "--stream", "--chunk-size", "17"]
        ) == 0
        assert capsys.readouterr().out == default_out
