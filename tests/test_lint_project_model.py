"""The project model: resolution, hierarchy, and build determinism.

The determinism property is the load-bearing one: the deep findings
(and the CI gate built on them) are only trustworthy if the model —
and everything derived from it — is identical for a given file set
regardless of the order files are discovered in.  A hypothesis shuffle
test pins that end to end, down to the rendered findings.
"""

import ast
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import (
    analyze_project,
    build_call_graph,
    build_project,
    run_deep_rules,
)
from repro.analysis.dataflow.model import module_name_for

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
DEEP = FIXTURES / "deep"
REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def rows_for(paths):
    rows = []
    for path in paths:
        source = path.read_text(encoding="utf-8")
        rows.append(
            (
                path,
                path.relative_to(FIXTURES).as_posix(),
                source,
                ast.parse(source),
            )
        )
    return rows


def deep_fixture_rows():
    return rows_for(sorted(DEEP.rglob("*.py")))


def synth_rows(modules):
    return [
        (
            Path(f"/nonexistent/{name}.py"),
            f"{name}.py",
            source,
            ast.parse(source),
        )
        for name, source in modules.items()
    ]


class TestModuleNaming:
    def test_package_files_get_dotted_names(self):
        assert (
            module_name_for(REPO_SRC / "repro" / "util" / "rng.py")
            == "repro.util.rng"
        )

    def test_package_init_names_the_package(self):
        assert (
            module_name_for(
                REPO_SRC / "repro" / "analysis" / "__init__.py"
            )
            == "repro.analysis"
        )

    def test_free_standing_file_is_its_stem(self):
        assert (
            module_name_for(DEEP / "r7_bad" / "r7_bad_train.py")
            == "r7_bad_train"
        )


class TestResolution:
    def test_reexport_chain_squeezes_to_definer(self):
        project = build_project(
            synth_rows(
                {
                    "origin": "def make_thing():\n    return 1\n",
                    "middle": "from origin import make_thing as mt\n",
                    "outer": "from middle import mt\n",
                }
            )
        )
        assert (
            project.resolve("outer", ("mt",)) == "origin.make_thing"
        )

    def test_method_resolution_walks_bases_across_modules(self):
        project = build_project(
            synth_rows(
                {
                    "basemod": (
                        "class Base:\n"
                        "    def step(self):\n"
                        "        return 0\n"
                    ),
                    "derivedmod": (
                        "from basemod import Base\n"
                        "class Derived(Base):\n"
                        "    pass\n"
                    ),
                }
            )
        )
        method = project.resolve_method("derivedmod.Derived", "step")
        assert method is not None
        assert method.qualname == "basemod.Base.step"

    def test_nested_imports_bind_too(self):
        project = build_project(
            synth_rows(
                {
                    "lazy": (
                        "def use():\n"
                        "    from origin import make_thing\n"
                        "    return make_thing()\n"
                    ),
                    "origin": "def make_thing():\n    return 1\n",
                }
            )
        )
        assert (
            project.resolve("lazy", ("make_thing",))
            == "origin.make_thing"
        )

    def test_import_graph_only_links_scanned_modules(self):
        project = build_project(
            synth_rows(
                {
                    "uses": "import os\nfrom origin import make_thing\n",
                    "origin": "def make_thing():\n    return 1\n",
                }
            )
        )
        assert project.import_graph()["uses"] == ("origin",)


class TestBuildDeterminism:
    @settings(max_examples=12, deadline=None)
    @given(st.permutations(deep_fixture_rows()))
    def test_model_fingerprint_is_input_order_independent(self, rows):
        assert (
            build_project(rows).fingerprint()
            == build_project(deep_fixture_rows()).fingerprint()
        )

    @settings(max_examples=6, deadline=None)
    @given(st.permutations(deep_fixture_rows()))
    def test_findings_are_input_order_independent(self, rows):
        project = build_project(rows)
        shuffled = run_deep_rules(project, analyze_project(project))
        baseline_project = build_project(deep_fixture_rows())
        baseline = run_deep_rules(
            baseline_project, analyze_project(baseline_project)
        )
        assert shuffled == baseline

    def test_call_graph_fingerprint_stable_across_builds(self):
        first = build_call_graph(build_project(deep_fixture_rows()))
        second = build_call_graph(build_project(deep_fixture_rows()))
        assert first.fingerprint() == second.fingerprint()
        assert "r7_bad_train.train -> r7_bad_pool.dispatch" in (
            first.fingerprint()
        )
