"""Tests for repro.recoverylog.stream: emit-on-close segmentation."""

import pytest

from helpers import make_process
from repro.errors import ConfigurationError, SegmentationError
from repro.recoverylog.entry import LogEntry
from repro.recoverylog.stream import StreamingSegmenter


def _entries(*processes):
    merged = [entry for process in processes for entry in process.entries]
    return sorted(merged, key=lambda entry: entry.sort_key)


class TestStateMachine:
    def test_emits_process_on_success(self):
        process = make_process(["TRYNOP", "REBOOT"], machine="m-a")
        segmenter = StreamingSegmenter()
        emitted = list(segmenter.feed_many(process.entries))
        assert emitted == [process]
        assert segmenter.emitted_count == 1
        assert segmenter.open_machine_count == 0

    def test_interleaved_machines_separate(self):
        a = make_process(["TRYNOP"], machine="m-a", start=0.0)
        b = make_process(["REBOOT", "RMA"], machine="m-b", start=10.0)
        segmenter = StreamingSegmenter()
        emitted = list(segmenter.feed_many(_entries(a, b)))
        assert sorted(emitted, key=lambda p: p.machine) == [a, b]

    def test_feed_returns_completed_process_or_none(self):
        process = make_process(["TRYNOP"], machine="m-a")
        segmenter = StreamingSegmenter()
        results = [segmenter.feed(entry) for entry in process.entries]
        assert results[:-1] == [None] * (len(process.entries) - 1)
        assert results[-1] == process

    def test_back_to_back_processes_same_machine(self):
        first = make_process(["TRYNOP"], machine="m-a", start=0.0)
        second = make_process(["REBOOT"], machine="m-a", start=10_000.0)
        segmenter = StreamingSegmenter()
        emitted = list(
            segmenter.feed_many(list(first.entries) + list(second.entries))
        )
        assert emitted == [first, second]

    def test_entry_count_tracks_consumed(self):
        process = make_process(["TRYNOP"], machine="m-a")
        segmenter = StreamingSegmenter()
        list(segmenter.feed_many(process.entries))
        assert segmenter.entry_count == len(process.entries)


class TestOrphans:
    def test_action_without_symptom_is_orphan(self):
        segmenter = StreamingSegmenter()
        assert segmenter.feed(LogEntry.action(1.0, "m", "REBOOT")) is None
        assert segmenter.orphan_count == 1
        assert segmenter.orphans[0].description == "REBOOT"

    def test_success_without_symptom_is_orphan(self):
        segmenter = StreamingSegmenter()
        segmenter.feed(LogEntry.success(1.0, "m"))
        assert segmenter.orphan_count == 1

    def test_orphan_retention_is_capped_but_counting_is_not(self):
        segmenter = StreamingSegmenter(max_orphans_kept=3)
        for index in range(10):
            segmenter.feed(LogEntry.action(float(index), "m", "REBOOT"))
        assert segmenter.orphan_count == 10
        assert len(segmenter.orphans) == 3


class TestOrdering:
    def test_out_of_order_time_raises(self):
        segmenter = StreamingSegmenter()
        segmenter.feed(LogEntry.symptom(10.0, "m", "error:X"))
        with pytest.raises(SegmentationError, match="out of stream order"):
            segmenter.feed(LogEntry.symptom(5.0, "m", "error:Y"))

    def test_equal_time_wrong_kind_order_raises(self):
        # The fast path admits strictly increasing times; ties must
        # still respect the LogEntry total order (symptom < action).
        segmenter = StreamingSegmenter()
        segmenter.feed(LogEntry.symptom(1.0, "m", "error:X"))
        segmenter.feed(LogEntry.action(1.0, "m", "REBOOT"))
        with pytest.raises(SegmentationError, match="out of stream order"):
            segmenter.feed(LogEntry.symptom(1.0, "m", "error:Y"))

    def test_equal_time_machine_ascending_accepted(self):
        segmenter = StreamingSegmenter()
        segmenter.feed(LogEntry.symptom(1.0, "m-a", "error:X"))
        segmenter.feed(LogEntry.symptom(1.0, "m-b", "error:X"))
        assert segmenter.open_machine_count == 2


class TestBounds:
    def test_open_buffer_overflow_raises(self):
        segmenter = StreamingSegmenter(max_open_entries=3)
        segmenter.feed(LogEntry.symptom(0.0, "m", "error:X"))
        segmenter.feed(LogEntry.symptom(1.0, "m", "warn:A"))
        segmenter.feed(LogEntry.symptom(2.0, "m", "warn:B"))
        with pytest.raises(SegmentationError, match="exceeding 3 entries"):
            segmenter.feed(LogEntry.symptom(3.0, "m", "warn:C"))

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingSegmenter(max_open_entries=1)
        with pytest.raises(ConfigurationError):
            StreamingSegmenter(max_orphans_kept=-1)

    def test_open_entry_count(self):
        segmenter = StreamingSegmenter()
        segmenter.feed(LogEntry.symptom(0.0, "m-a", "error:X"))
        segmenter.feed(LogEntry.symptom(1.0, "m-b", "error:Y"))
        segmenter.feed(LogEntry.action(2.0, "m-b", "REBOOT"))
        assert segmenter.open_entry_count == 3


class TestPending:
    def test_pending_machine_sorted(self):
        segmenter = StreamingSegmenter()
        segmenter.feed(LogEntry.symptom(0.0, "m-b", "error:Y"))
        segmenter.feed(LogEntry.symptom(1.0, "m-a", "error:X"))
        segmenter.feed(LogEntry.action(2.0, "m-b", "REBOOT"))
        pending = segmenter.pending()
        assert [buffer[0].machine for buffer in pending] == ["m-a", "m-b"]
        assert len(pending[1]) == 2

    def test_pending_empty_after_close(self):
        process = make_process(["TRYNOP"], machine="m-a")
        segmenter = StreamingSegmenter()
        list(segmenter.feed_many(process.entries))
        assert segmenter.pending() == ()
