"""Tests for policy-diff diagnostics and the threshold sensitivity sweep."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RecoveryPolicyLearner
from repro.errors import NotTrainedError
from repro.evaluation.split import time_ordered_split
from repro.experiments.diagnostics import diff_policies
from repro.experiments.scenario import build_scenario
from repro.experiments.sensitivity import sweep_tree_threshold
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig
from repro.tracegen.workload import small_config


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(small_config(seed=19), top_k=6)


@pytest.fixture(scope="module")
def fitted(scenario):
    train, test = time_ordered_split(scenario.processes, 0.5)
    learner = RecoveryPolicyLearner(
        config=PipelineConfig(
            top_k_types=6,
            qlearning=QLearningConfig(max_sweeps=120, episodes_per_sweep=16),
            tree=SelectionTreeConfig(min_sweeps=40, check_interval=20),
        )
    ).fit(train)
    evaluator = learner.make_evaluator(test)
    evaluation = evaluator.evaluate(learner.trained_policy())
    return learner, evaluation


class TestDiffPolicies:
    def test_requires_fit(self):
        with pytest.raises(NotTrainedError):
            diff_policies(RecoveryPolicyLearner())

    def test_entries_for_every_trained_type(self, fitted):
        learner, _evaluation = fitted
        report = diff_policies(learner)
        assert len(report.entries) == len(learner.registry_)

    def test_pinned_reimage_type_diverges_at_first_action(self, fitted):
        learner, _evaluation = fitted
        report = diff_policies(learner)
        # The small workload pins a reimage-needing fault at rank 1: the
        # trained chain must change the FIRST action (the paper's
        # observed improvement pattern).
        changes = report.first_action_changes()
        assert changes
        assert any(
            entry.trained_chain and entry.trained_chain[0] == "REIMAGE"
            for entry in changes
        )

    def test_incumbent_chain_is_the_ladder(self, fitted):
        learner, _evaluation = fitted
        report = diff_policies(learner, depth=4)
        for entry in report.entries:
            assert entry.incumbent_chain == (
                "TRYNOP",
                "REBOOT",
                "REBOOT",
                "REIMAGE",
            )

    def test_relative_costs_attached(self, fitted):
        learner, evaluation = fitted
        report = diff_policies(learner, evaluation=evaluation)
        attached = [
            e for e in report.entries if e.relative_cost is not None
        ]
        assert attached

    def test_divergence_index_consistency(self, fitted):
        learner, _evaluation = fitted
        report = diff_policies(learner)
        for entry in report.entries:
            if entry.first_divergence is not None:
                index = entry.first_divergence
                assert (
                    entry.incumbent_chain[index]
                    != entry.trained_chain[index]
                )
                assert entry.diverges

    def test_render(self, fitted):
        learner, evaluation = fitted
        text = diff_policies(learner, evaluation=evaluation).render()
        assert "Policy diff" in text
        assert "incumbent" in text


class TestThresholdSweep:
    def test_sweep_shapes(self, scenario):
        result = sweep_tree_threshold(
            scenario,
            thresholds=(0.0, 0.4),
            fraction=0.5,
            top_k=4,
            qlearning=QLearningConfig(
                max_sweeps=90, episodes_per_sweep=16
            ),
        )
        assert len(result.points) == 2
        zero, wide = result.points
        # Wider thresholds can only enumerate more candidates.
        assert wide.mean_candidates >= zero.mean_candidates
        for point in result.points:
            assert 0.3 < point.relative_cost < 1.3
            assert point.mean_sweeps > 0
        assert "threshold" in result.render()
