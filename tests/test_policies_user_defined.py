"""Tests for the user-defined cheapest-first ladder policy."""

import pytest

from repro.actions import default_catalog
from repro.errors import ConfigurationError
from repro.mdp.state import RecoveryState
from repro.policies.user_defined import DEFAULT_RETRY_BUDGETS, UserDefinedPolicy

CATALOG = default_catalog()


def walk(policy, error_type="error:X", steps=8):
    """The action chain the policy follows while everything fails."""
    state = RecoveryState.initial(error_type)
    chain = []
    for _ in range(steps):
        action = policy.decide(state).action
        chain.append(action)
        state = state.after(action, healthy=False)
    return chain


class TestLadder:
    def test_default_escalation_order(self):
        policy = UserDefinedPolicy(CATALOG)
        assert walk(policy, steps=5) == [
            "TRYNOP",
            "REBOOT",
            "REBOOT",
            "REIMAGE",
            "RMA",
        ]

    def test_manual_repeats_forever(self):
        policy = UserDefinedPolicy(CATALOG)
        chain = walk(policy, steps=8)
        assert chain[4:] == ["RMA"] * 4

    def test_custom_budgets(self):
        policy = UserDefinedPolicy(
            CATALOG, retry_budgets={"TRYNOP": 2, "REBOOT": 1, "REIMAGE": 1}
        )
        assert walk(policy, steps=5) == [
            "TRYNOP",
            "TRYNOP",
            "REBOOT",
            "REIMAGE",
            "RMA",
        ]

    def test_zero_budget_skips_action(self):
        policy = UserDefinedPolicy(
            CATALOG, retry_budgets={"TRYNOP": 0, "REBOOT": 1, "REIMAGE": 1}
        )
        assert walk(policy, steps=3) == ["REBOOT", "REIMAGE", "RMA"]

    def test_missing_budget_defaults_to_one(self):
        policy = UserDefinedPolicy(CATALOG, retry_budgets={})
        assert walk(policy, steps=4) == [
            "TRYNOP",
            "REBOOT",
            "REIMAGE",
            "RMA",
        ]

    def test_decision_source_labelled(self):
        policy = UserDefinedPolicy(CATALOG)
        decision = policy.decide(RecoveryState.initial("error:X"))
        assert decision.source == "user-defined"

    def test_budget_for_manual_is_unbounded(self):
        policy = UserDefinedPolicy(CATALOG)
        assert policy.budget_for("RMA") > 10**6
        assert policy.budget_for("REBOOT") == DEFAULT_RETRY_BUDGETS["REBOOT"]

    def test_terminal_state_rejected(self):
        policy = UserDefinedPolicy(CATALOG)
        terminal = RecoveryState("error:X", True, ("RMA",))
        with pytest.raises(ConfigurationError):
            policy.decide(terminal)

    def test_unknown_budget_action_rejected(self):
        with pytest.raises(ConfigurationError):
            UserDefinedPolicy(CATALOG, retry_budgets={"FSCK": 1})

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            UserDefinedPolicy(CATALOG, retry_budgets={"TRYNOP": -1})

    def test_statelessness_across_types(self):
        policy = UserDefinedPolicy(CATALOG)
        assert walk(policy, "error:A", 2) == walk(policy, "error:B", 2)
