"""Serial-equivalence harness for the parallel training engine.

The paper's per-error-type learners are independent, so sharding them
across a process pool must be a pure performance transformation: the
tests here train the same synthetic logs serially and in parallel and
assert *bit-identical* Q tables, training metadata and extracted
policies — for the engine directly and for the end-to-end pipeline on a
tracegen log — plus clear :class:`TrainingError` surfacing when a
worker's course fails.
"""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.core import PipelineConfig, RecoveryPolicyLearner
from repro.errors import ConfigurationError, TrainingError
from repro.learning.parallel import ParallelTrainingEngine
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig
from repro.learning.telemetry import TelemetryRecorder

CATALOG = default_catalog()

QL = QLearningConfig(max_sweeps=40, episodes_per_sweep=8, seed=3)
TREE = SelectionTreeConfig(min_sweeps=10, check_interval=5)


def ladder_groups():
    """Three error types with distinct optimal first actions."""
    hard = ladder_processes(
        "error:Hard",
        [(["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 12),
         (["TRYNOP", "REBOOT"], 2)],
        realistic_durations=True,
    )
    soft = ladder_processes(
        "error:Soft",
        [(["TRYNOP"], 10), (["TRYNOP", "REBOOT"], 5)],
        realistic_durations=True,
        machine_prefix="s",
    )
    mid = ladder_processes(
        "error:Mid",
        [(["TRYNOP", "REBOOT"], 8), (["TRYNOP", "REBOOT", "REBOOT"], 4)],
        realistic_durations=True,
        machine_prefix="d",
    )
    return {"error:Hard": hard, "error:Soft": soft, "error:Mid": mid}


def engine_for(groups, n_workers, *, tree=TREE, telemetry=None):
    ensemble = [p for ps in groups.values() for p in ps]
    return ParallelTrainingEngine(
        ensemble,
        CATALOG,
        qlearning=QL,
        tree=tree,
        n_workers=n_workers,
        telemetry=telemetry,
    )


def qtable_snapshot(qtable):
    """All (state, action) -> (value, visits) pairs, order-insensitive."""
    return {
        (state, action): (
            qtable.value(state, action),
            qtable.visit_count(state, action),
        )
        for state in qtable.states()
        for action in qtable.action_names
    }


def outcome_snapshot(outcomes):
    return {
        error_type: (
            qtable_snapshot(o.training.qtable),
            o.rules,
            o.training.sweeps_run,
            o.training.episodes,
            o.training.converged,
            o.expected_cost,
        )
        for error_type, o in outcomes.items()
    }


class TestEngineValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            engine_for(ladder_groups(), 0)

    def test_serial_engine_trains_all_types(self):
        groups = ladder_groups()
        outcomes = engine_for(groups, 1).train(groups)
        assert list(outcomes) == list(groups)
        for error_type, outcome in outcomes.items():
            assert outcome.training.error_type == error_type
            assert outcome.rules
            assert not outcome.from_checkpoint


class TestSerialParallelEquivalence:
    @pytest.mark.slow
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_worker_count_invariance_on_ladders(self, n_workers):
        groups = ladder_groups()
        serial = engine_for(groups, 1).train(groups)
        parallel = engine_for(groups, n_workers).train(groups)
        assert outcome_snapshot(serial) == outcome_snapshot(parallel)

    @pytest.mark.slow
    def test_greedy_extraction_equivalence(self):
        groups = ladder_groups()
        serial = engine_for(groups, 1, tree=None).train(groups)
        parallel = engine_for(groups, 2, tree=None).train(groups)
        assert outcome_snapshot(serial) == outcome_snapshot(parallel)

    @pytest.mark.slow
    def test_pipeline_equivalence_on_tracegen_log(self, small_processes):
        """End to end on a generated log: byte-identical policies."""

        def fit(n_workers):
            config = PipelineConfig(
                top_k_types=4,
                qlearning=QLearningConfig(max_sweeps=50, episodes_per_sweep=8),
                tree=SelectionTreeConfig(min_sweeps=15, check_interval=10),
                n_workers=n_workers,
            )
            return RecoveryPolicyLearner(config=config).fit(small_processes)

        serial = fit(1)
        parallel = fit(4)
        # Extracted policies: identical rules, identical expected costs.
        assert serial.rules_ == parallel.rules_
        assert (
            serial.trained_policy().rules == parallel.trained_policy().rules
        )
        # Q tables and course metadata: bit-identical per type.
        serial_q = serial.training_result_.qtables()
        parallel_q = parallel.training_result_.qtables()
        assert set(serial_q) == set(parallel_q)
        for error_type in serial_q:
            assert qtable_snapshot(serial_q[error_type]) == qtable_snapshot(
                parallel_q[error_type]
            )
        assert (
            serial.training_result_.sweeps_to_convergence()
            == parallel.training_result_.sweeps_to_convergence()
        )

    def test_training_order_cannot_change_results(self):
        """Per-type RNG derivation: group order is irrelevant."""
        groups = ladder_groups()
        reversed_groups = dict(reversed(list(groups.items())))
        forward = engine_for(groups, 1).train(groups)
        backward = engine_for(groups, 1).train(reversed_groups)
        assert outcome_snapshot(forward) == outcome_snapshot(backward)


class TestWorkerFailure:
    @pytest.mark.slow
    def test_worker_failure_surfaces_training_error(self):
        groups = ladder_groups()
        # Poison one type with a process of a different type: its course
        # must fail inside the worker and surface as a TrainingError
        # naming the failing type.
        groups["error:Soft"] = groups["error:Soft"] + [
            groups["error:Hard"][0]
        ]
        engine = engine_for(groups, 2)
        with pytest.raises(TrainingError, match="error:Soft"):
            engine.train(groups)

    def test_serial_failure_also_names_the_type(self):
        groups = ladder_groups()
        groups["error:Mid"] = [groups["error:Hard"][0]]
        engine = engine_for(groups, 1)
        with pytest.raises(TrainingError, match="error:Mid"):
            engine.train(groups)


class TestTelemetry:
    def test_serial_telemetry_records_curves(self):
        groups = ladder_groups()
        recorder = TelemetryRecorder()
        outcomes = engine_for(groups, 1, telemetry=recorder).train(groups)
        assert set(recorder.per_type) == set(groups)
        for error_type, outcome in outcomes.items():
            record = recorder.per_type[error_type]
            assert record.finished
            assert record.process_count == len(groups[error_type])
            assert record.sweeps_run == outcome.training.sweeps_run
            assert record.episodes == outcome.training.episodes
            assert len(record.sweeps) == outcome.training.sweeps_run
            assert record.wall_clock > 0
            # Temperature anneals monotonically; Q deltas are recorded.
            temps = record.temperature_curve()
            assert all(b <= a for a, b in zip(temps, temps[1:]))
            assert len(record.q_delta_curve()) == record.sweeps_run

    @pytest.mark.slow
    def test_parallel_telemetry_replays_worker_events(self):
        groups = ladder_groups()
        serial_rec = TelemetryRecorder()
        parallel_rec = TelemetryRecorder()
        engine_for(groups, 1, telemetry=serial_rec).train(groups)
        engine_for(groups, 2, telemetry=parallel_rec).train(groups)
        assert set(parallel_rec.per_type) == set(serial_rec.per_type)
        for error_type, serial_record in serial_rec.per_type.items():
            parallel_record = parallel_rec.per_type[error_type]
            # Curves are identical; wall-clock is machine-dependent.
            assert parallel_record.sweeps == serial_record.sweeps
            assert parallel_record.episodes == serial_record.episodes
            assert parallel_record.converged == serial_record.converged

    def test_telemetry_never_changes_results(self):
        groups = ladder_groups()
        with_telemetry = engine_for(
            groups, 1, telemetry=TelemetryRecorder()
        ).train(groups)
        without = engine_for(groups, 1).train(groups)
        assert outcome_snapshot(with_telemetry) == outcome_snapshot(without)
