"""Tests for repro.actions.action."""

import pytest

from repro.actions.action import (
    ActionCatalog,
    REBOOT,
    REIMAGE,
    RMA,
    RepairAction,
    TRYNOP,
)
from repro.actions.costs import DeterministicCost
from repro.errors import ConfigurationError, UnknownActionError


class TestRepairAction:
    def test_strength_ordering(self):
        assert REBOOT.is_stronger_than(TRYNOP)
        assert not TRYNOP.is_stronger_than(REBOOT)

    def test_can_replace_weaker_and_equal(self):
        assert REIMAGE.can_replace(REBOOT)
        assert REBOOT.can_replace(REBOOT)
        assert not REBOOT.can_replace(REIMAGE)

    def test_str_is_name(self):
        assert str(RMA) == "RMA"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            RepairAction("", 0)

    def test_negative_strength_rejected(self):
        with pytest.raises(ConfigurationError):
            RepairAction("X", -1)

    def test_default_cost_model_installed(self):
        action = RepairAction("X", 0)
        assert action.cost_model.mean > 0

    def test_manual_flag(self):
        assert RMA.manual
        assert not REIMAGE.manual


class TestActionCatalog:
    def test_default_catalog_order(self, catalog):
        assert catalog.names() == ["TRYNOP", "REBOOT", "REIMAGE", "RMA"]

    def test_cheapest_and_strongest(self, catalog):
        assert catalog.cheapest.name == "TRYNOP"
        assert catalog.strongest.name == "RMA"

    def test_lookup_by_name(self, catalog):
        assert catalog["REBOOT"] is REBOOT

    def test_unknown_name_raises(self, catalog):
        with pytest.raises(UnknownActionError):
            catalog["FSCK"]

    def test_contains(self, catalog):
        assert "REIMAGE" in catalog
        assert "FSCK" not in catalog

    def test_stronger_than(self, catalog):
        names = [a.name for a in catalog.stronger_than(REBOOT)]
        assert names == ["REIMAGE", "RMA"]

    def test_next_stronger(self, catalog):
        assert catalog.next_stronger(TRYNOP).name == "REBOOT"

    def test_next_stronger_of_strongest_raises(self, catalog):
        with pytest.raises(UnknownActionError):
            catalog.next_stronger(RMA)

    def test_strongest_must_be_manual(self):
        with pytest.raises(ConfigurationError, match="manual"):
            ActionCatalog([RepairAction("A", 0), RepairAction("B", 1)])

    def test_duplicate_strengths_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionCatalog(
                [
                    RepairAction("A", 0),
                    RepairAction("B", 0, manual=True),
                ]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionCatalog(
                [
                    RepairAction("A", 0),
                    RepairAction("A", 1, manual=True),
                ]
            )

    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionCatalog([])

    def test_iteration_in_strength_order(self):
        custom = ActionCatalog(
            [
                RepairAction("HIGH", 5, DeterministicCost(1), manual=True),
                RepairAction("LOW", 1, DeterministicCost(1)),
            ]
        )
        assert [a.name for a in custom] == ["LOW", "HIGH"]

    def test_len(self, catalog):
        assert len(catalog) == 4
