"""Tests for proper-policy checks."""

from repro.mdp.contraction import is_proper_policy, max_episode_length_bound
from repro.mdp.model import FiniteMDP, Transition


def build(transitions, terminals=("t",)):
    return FiniteMDP(transitions, terminal_states=terminals)


class TestIsProperPolicy:
    def test_direct_exit_is_proper(self):
        mdp = build({"s": {"a": [Transition(1.0, 1.0, "t")]}})
        assert is_proper_policy(mdp, {"s": "a"})

    def test_probabilistic_exit_is_proper(self):
        mdp = build(
            {
                "s": {
                    "a": [
                        Transition(0.01, 1.0, "t"),
                        Transition(0.99, 1.0, "s"),
                    ]
                }
            }
        )
        assert is_proper_policy(mdp, {"s": "a"})

    def test_pure_loop_is_improper(self):
        mdp = build(
            {
                "s": {
                    "loop": [Transition(1.0, 1.0, "s")],
                    "exit": [Transition(1.0, 1.0, "t")],
                }
            }
        )
        assert not is_proper_policy(mdp, {"s": "loop"})
        assert is_proper_policy(mdp, {"s": "exit"})

    def test_two_state_cycle_improper(self):
        mdp = build(
            {
                "a": {
                    "go": [Transition(1.0, 1.0, "b")],
                    "exit": [Transition(1.0, 1.0, "t")],
                },
                "b": {"back": [Transition(1.0, 1.0, "a")]},
            }
        )
        assert not is_proper_policy(mdp, {"a": "go", "b": "back"})
        assert is_proper_policy(mdp, {"a": "exit", "b": "back"})

    def test_missing_policy_entry_is_improper(self):
        mdp = build({"s": {"a": [Transition(1.0, 1.0, "t")]}})
        assert not is_proper_policy(mdp, {})


class TestEpisodeLengthBound:
    def test_dag_bound(self):
        mdp = build(
            {
                "a": {"go": [Transition(1.0, 1.0, "b")]},
                "b": {"go": [Transition(1.0, 1.0, "t")]},
            }
        )
        assert max_episode_length_bound(mdp) == 2

    def test_cycle_reports_minus_one(self):
        mdp = build(
            {
                "a": {"go": [Transition(1.0, 1.0, "b")]},
                "b": {"back": [Transition(1.0, 1.0, "a")]},
            },
            terminals=(),
        )
        assert max_episode_length_bound(mdp) == -1

    def test_self_loop_with_positive_probability_counts_as_cycle(self):
        mdp = build(
            {
                "s": {
                    "a": [
                        Transition(0.5, 1.0, "s"),
                        Transition(0.5, 1.0, "t"),
                    ]
                }
            }
        )
        assert max_episode_length_bound(mdp) == -1

    def test_terminal_only(self):
        mdp = build({}, terminals=("t",))
        assert max_episode_length_bound(mdp) == 0
