"""Tests for the rolling retrainer (online adaptation)."""

import pytest

from helpers import ladder_processes, make_process
from repro.actions import default_catalog
from repro.core.config import PipelineConfig
from repro.core.online import RollingRetrainer
from repro.errors import ConfigurationError, TrainingError
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig
from repro.learning.telemetry import EpisodeRecorder
from repro.mdp.state import RecoveryState
from repro.mining.dependence import SymptomCooccurrence
from repro.mining.streaming import StreamingMiner
from repro.session.environment import ReplayEnvironment
from repro.simplatform.platform import SimulationPlatform

CATALOG = default_catalog()


def fast_config():
    return PipelineConfig(
        top_k_types=2,
        qlearning=QLearningConfig(max_sweeps=100, episodes_per_sweep=16),
        tree=SelectionTreeConfig(min_sweeps=30, check_interval=15),
    )


def era(reboot_curable: bool, count: int = 60, start_index: int = 0):
    """Processes of one drifting type plus a steady companion type."""
    if reboot_curable:
        drifting = [(["TRYNOP", "REBOOT"], count * 2 // 3),
                    (["TRYNOP"], count // 3)]
    else:
        drifting = [
            (["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], count),
        ]
    return ladder_processes(
        "error:Drift", drifting,
        machine_prefix=f"d{start_index}", realistic_durations=True,
    ) + ladder_processes(
        "error:Steady", [(["TRYNOP"], count)],
        machine_prefix=f"s{start_index}", realistic_durations=True,
    )


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"retrain_every": 0},
            {"min_history": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RollingRetrainer(CATALOG, **kwargs)

    def test_retrain_without_history_rejected(self):
        retrainer = RollingRetrainer(CATALOG, fast_config())
        with pytest.raises(TrainingError):
            retrainer.retrain()


class TestLifecycle:
    def test_fallback_deployed_before_first_fit(self):
        retrainer = RollingRetrainer(CATALOG, fast_config())
        assert retrainer.current_policy().name == "user-defined"
        assert retrainer.retrain_count == 0

    def test_observe_triggers_retrain_at_threshold(self):
        retrainer = RollingRetrainer(
            CATALOG, fast_config(), min_history=50, retrain_every=100
        )
        triggered = []
        for process in era(reboot_curable=True, count=60):
            triggered.append(retrainer.observe(process))
        assert sum(triggered) == 1
        assert retrainer.retrain_count == 1
        assert retrainer.current_policy().name == "hybrid"

    def test_window_ages_out_old_history(self):
        retrainer = RollingRetrainer(
            CATALOG, fast_config(), window=30, min_history=10,
            retrain_every=10**9,
        )
        for process in era(reboot_curable=True, count=60):
            retrainer.observe(process)
        assert retrainer.history_size == 30

    def test_adaptation_to_drift(self):
        retrainer = RollingRetrainer(
            CATALOG,
            fast_config(),
            window=120,
            min_history=60,
            retrain_every=10**9,  # manual retraining in this test
        )
        for process in era(reboot_curable=True, count=60):
            retrainer.observe(process)
        retrainer.retrain()
        s0 = RecoveryState.initial("error:Drift")
        first = retrainer.learner.rules_[s0][0]
        assert first == "TRYNOP"  # ladder is fine while reboots work

        # The environment drifts: reboots stop curing the fault.
        for process in era(
            reboot_curable=False, count=60, start_index=1
        ):
            retrainer.observe(process)
        retrainer.retrain()
        second = retrainer.learner.rules_[s0][0]
        assert second == "REIMAGE"
        assert retrainer.retrain_count == 2

    def test_failed_retrain_keeps_previous_policy(self):
        retrainer = RollingRetrainer(
            CATALOG,
            # min_processes_per_type impossible -> fit always fails
            PipelineConfig(min_processes_per_type=10**9),
            min_history=1,
            retrain_every=10**9,
        )
        retrainer.observe(era(True, count=3)[0])
        with pytest.raises(TrainingError):
            retrainer.retrain()
        # Deployment unchanged: the fallback still serves.
        assert retrainer.current_policy().name == "user-defined"
        assert retrainer.retrain_count == 0


class TestEdgeCases:
    def test_failed_refit_keeps_trained_policy_atomically(self):
        """A refit failure after a successful deploy must change nothing:
        the deployed hybrid, the fitted learner and the counters all
        stay exactly as the last good fit left them."""
        retrainer = RollingRetrainer(
            CATALOG,
            fast_config(),
            window=40,
            min_history=1,
            retrain_every=10**9,
        )
        for process in era(reboot_curable=True, count=60):
            retrainer.observe(process)
        deployed = retrainer.retrain()
        learner = retrainer.learner
        assert retrainer.retrain_count == 1
        # Age the entire window out with unusable history: 40 singleton
        # error types, each far below min_processes_per_type.
        for index in range(40):
            retrainer.observe(
                make_process(
                    ["TRYNOP", "RMA"],
                    machine=f"junk-{index:03d}",
                    error_type=f"error:Rare{index}",
                    start=index * 10_000.0,
                )
            )
        with pytest.raises(TrainingError):
            retrainer.retrain()
        assert retrainer.current_policy() is deployed
        assert retrainer.learner is learner
        assert retrainer.retrain_count == 1

    def test_window_smaller_than_retrain_every(self):
        """A window shorter than the retrain period still retrains on
        schedule — the cadence counts observations, not window size."""
        retrainer = RollingRetrainer(
            CATALOG,
            fast_config(),
            window=20,
            min_history=10,
            retrain_every=50,
        )
        triggered = [
            retrainer.observe(p)
            for p in era(reboot_curable=True, count=60)  # 120 processes
        ]
        assert retrainer.history_size == 20
        assert retrainer.retrain_count == 2
        assert [i for i, t in enumerate(triggered) if t] == [49, 99]

    def test_min_history_boundary_is_exact(self):
        """No retrain at min_history - 1 observations; retrain at
        exactly min_history."""
        retrainer = RollingRetrainer(
            CATALOG,
            fast_config(),
            window=100,
            min_history=30,
            retrain_every=1,
        )
        processes = era(reboot_curable=True, count=30)[:30]
        for process in processes[:29]:
            assert retrainer.observe(process) is False
        assert retrainer.retrain_count == 0
        assert retrainer.observe(processes[29]) is True
        assert retrainer.retrain_count == 1

    def test_window_below_min_history_never_triggers(self):
        """The window caps observable history, so min_history above it
        can never be reached — observe must not retrain (or error)."""
        retrainer = RollingRetrainer(
            CATALOG,
            fast_config(),
            window=10,
            min_history=20,
            retrain_every=1,
        )
        for process in era(reboot_curable=True, count=30):
            assert retrainer.observe(process) is False
        assert retrainer.retrain_count == 0


class TestRecover:
    def test_recover_routes_through_session_driver(self):
        """The deployed policy's episodes run via the shared driver with
        origin "online" and match platform.replay exactly."""
        process = make_process(
            ["TRYNOP", "REBOOT"], error_type="error:Drift"
        )
        platform = SimulationPlatform([process], CATALOG)
        retrainer = RollingRetrainer(CATALOG, fast_config())
        recorder = EpisodeRecorder()
        outcome = retrainer.recover(
            ReplayEnvironment(platform, process), telemetry=recorder
        )
        expected = platform.replay(process, retrainer.current_policy())
        assert outcome.handled
        assert outcome.actions == expected.actions
        assert outcome.cost == expected.cost
        assert outcome.trace.origin == "online"
        assert recorder.by_origin("online") == (outcome.trace,)


class TestSubscribers:
    def test_subscribers_called_on_every_retrain(self):
        published = []
        retrainer = RollingRetrainer(
            CATALOG, fast_config(),
            window=200, retrain_every=60, min_history=60,
        )
        retrainer.subscribe(published.append)
        for process in era(True, count=60):
            retrainer.observe(process)
        assert len(published) == retrainer.retrain_count > 0
        # Subscribers receive exactly what was deployed, post-swap.
        assert published[-1] is retrainer.current_policy()

    def test_subscribers_in_registration_order(self):
        order = []
        retrainer = RollingRetrainer(
            CATALOG, fast_config(),
            window=200, retrain_every=60, min_history=60,
        )
        retrainer.subscribe(lambda _p: order.append("first"))
        retrainer.subscribe(lambda _p: order.append("second"))
        for process in era(True, count=60):
            if retrainer.observe(process):
                break
        assert order == ["first", "second"]

    def test_failed_retrain_publishes_nothing(self):
        published = []
        retrainer = RollingRetrainer(CATALOG, fast_config())
        retrainer.subscribe(published.append)
        with pytest.raises(TrainingError):
            retrainer.retrain()
        assert published == []


class TestMinerHook:
    def test_observed_processes_flow_into_miner(self, small_processes):
        miner = StreamingMiner()
        retrainer = RollingRetrainer(min_history=10**9, miner=miner)
        for process in small_processes[:40]:
            retrainer.observe(process)
        assert retrainer.miner is miner
        assert miner.process_count == 40
        reference = SymptomCooccurrence.from_transactions(
            p.symptom_set for p in small_processes[:40]
        )
        assert miner.cooccurrence.items == reference.items
        assert (
            miner.cooccurrence.transaction_count
            == reference.transaction_count
        )

    def test_no_miner_by_default(self):
        assert RollingRetrainer().miner is None
