"""Tests for the rolling retrainer (online adaptation)."""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.core.config import PipelineConfig
from repro.core.online import RollingRetrainer
from repro.errors import ConfigurationError, TrainingError
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig
from repro.mdp.state import RecoveryState

CATALOG = default_catalog()


def fast_config():
    return PipelineConfig(
        top_k_types=2,
        qlearning=QLearningConfig(max_sweeps=100, episodes_per_sweep=16),
        tree=SelectionTreeConfig(min_sweeps=30, check_interval=15),
    )


def era(reboot_curable: bool, count: int = 60, start_index: int = 0):
    """Processes of one drifting type plus a steady companion type."""
    if reboot_curable:
        drifting = [(["TRYNOP", "REBOOT"], count * 2 // 3),
                    (["TRYNOP"], count // 3)]
    else:
        drifting = [
            (["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], count),
        ]
    return ladder_processes(
        "error:Drift", drifting,
        machine_prefix=f"d{start_index}", realistic_durations=True,
    ) + ladder_processes(
        "error:Steady", [(["TRYNOP"], count)],
        machine_prefix=f"s{start_index}", realistic_durations=True,
    )


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"retrain_every": 0},
            {"min_history": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RollingRetrainer(CATALOG, **kwargs)

    def test_retrain_without_history_rejected(self):
        retrainer = RollingRetrainer(CATALOG, fast_config())
        with pytest.raises(TrainingError):
            retrainer.retrain()


class TestLifecycle:
    def test_fallback_deployed_before_first_fit(self):
        retrainer = RollingRetrainer(CATALOG, fast_config())
        assert retrainer.current_policy().name == "user-defined"
        assert retrainer.retrain_count == 0

    def test_observe_triggers_retrain_at_threshold(self):
        retrainer = RollingRetrainer(
            CATALOG, fast_config(), min_history=50, retrain_every=100
        )
        triggered = []
        for process in era(reboot_curable=True, count=60):
            triggered.append(retrainer.observe(process))
        assert sum(triggered) == 1
        assert retrainer.retrain_count == 1
        assert retrainer.current_policy().name == "hybrid"

    def test_window_ages_out_old_history(self):
        retrainer = RollingRetrainer(
            CATALOG, fast_config(), window=30, min_history=10,
            retrain_every=10**9,
        )
        for process in era(reboot_curable=True, count=60):
            retrainer.observe(process)
        assert retrainer.history_size == 30

    def test_adaptation_to_drift(self):
        retrainer = RollingRetrainer(
            CATALOG,
            fast_config(),
            window=120,
            min_history=60,
            retrain_every=10**9,  # manual retraining in this test
        )
        for process in era(reboot_curable=True, count=60):
            retrainer.observe(process)
        retrainer.retrain()
        s0 = RecoveryState.initial("error:Drift")
        first = retrainer.learner.rules_[s0][0]
        assert first == "TRYNOP"  # ladder is fine while reboots work

        # The environment drifts: reboots stop curing the fault.
        for process in era(
            reboot_curable=False, count=60, start_index=1
        ):
            retrainer.observe(process)
        retrainer.retrain()
        second = retrainer.learner.rules_[s0][0]
        assert second == "REIMAGE"
        assert retrainer.retrain_count == 2

    def test_failed_retrain_keeps_previous_policy(self):
        retrainer = RollingRetrainer(
            CATALOG,
            # min_processes_per_type impossible -> fit always fails
            PipelineConfig(min_processes_per_type=10**9),
            min_history=1,
            retrain_every=10**9,
        )
        retrainer.observe(era(True, count=3)[0])
        with pytest.raises(TrainingError):
            retrainer.retrain()
        # Deployment unchanged: the fallback still serves.
        assert retrainer.current_policy().name == "user-defined"
        assert retrainer.retrain_count == 0
