"""The deep gate: ``repro lint --deep`` over the shipped tree.

Mirrors the tier-1 syntactic gate one level up: the whole-program
rules R7-R10 must come back with zero unsuppressed findings on
``src/repro``, with an empty baseline, inside the CI wall-clock budget.
The companion tests pin the new CLI surface (--deep, --format sarif,
--explain, --stats).
"""

import json
from pathlib import Path
from time import perf_counter

import repro
from repro.analysis import Baseline, render_text, run_lint
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_DIR = Path(repro.__file__).resolve().parent
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

# CI runs `timeout 15 repro lint --deep src/` — keep headroom below it.
DEEP_BUDGET_SECONDS = 15.0


class TestDeepGate:
    def test_package_tree_is_deep_clean_within_budget(self):
        baseline = Baseline.load(BASELINE_PATH)
        start = perf_counter()
        report = run_lint(
            [PACKAGE_DIR],
            baseline=baseline,
            root=REPO_ROOT,
            deep=True,
        )
        elapsed = perf_counter() - start
        assert report.clean, "\n" + render_text(report)
        assert report.baselined == 0  # the baseline absorbs nothing
        assert elapsed < DEEP_BUDGET_SECONDS, (
            f"deep lint took {elapsed:.1f}s, budget is "
            f"{DEEP_BUDGET_SECONDS:.0f}s"
        )

    def test_deep_cli_invocation_matches_ci(self, capsys):
        code = main(
            [
                "lint",
                str(PACKAGE_DIR),
                "--deep",
                "--baseline",
                str(BASELINE_PATH),
            ]
        )
        assert code == 0
        assert "0 findings" in capsys.readouterr().out


class TestSarifOutput:
    def test_sarif_carries_all_rule_metadata(self, capsys):
        code = main(
            [
                "lint",
                str(FIXTURES / "r1_good.py"),
                "--format",
                "sarif",
            ]
        )
        assert code == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == [
            "R1", "R2", "R3", "R4", "R5", "R6",
            "R7", "R8", "R9", "R10",
        ]
        for rule in driver["rules"]:
            assert rule["fullDescription"]["text"]
            assert rule["properties"]["family"] in (
                "syntactic", "dataflow",
            )

    def test_sarif_results_locate_deep_findings(self, capsys):
        code = main(
            [
                "lint",
                str(FIXTURES / "deep" / "r9_bad"),
                "--deep",
                "--format",
                "sarif",
            ]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "R9"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "r9_bad_driver.py"
        )
        assert location["region"]["startLine"] == 16
        assert location["region"]["startColumn"] >= 1
        assert "fix:" in result["message"]["text"]


class TestExplain:
    def test_explain_renders_rationale_and_examples(self, capsys):
        assert main(["lint", "--explain", "R9"]) == 0
        out = capsys.readouterr().out
        assert "R9" in out
        assert "whole-program rule" in out
        assert "Bad:" in out
        assert "Good:" in out
        assert "repro-lint: disable=R9" in out

    def test_explain_syntactic_rule(self, capsys):
        assert main(["lint", "--explain", "r1"]) == 0
        out = capsys.readouterr().out
        assert "R1" in out
        assert "per-file rule" in out

    def test_explain_unknown_rule_fails(self, capsys):
        assert main(["lint", "--explain", "R99"]) == 1
        assert "unknown rule" in capsys.readouterr().err


class TestStats:
    def test_stats_go_to_stderr_and_name_stages(self, capsys):
        code = main(
            [
                "lint",
                str(FIXTURES / "deep" / "r7_good"),
                "--deep",
                "--stats",
                "--format",
                "json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "lint stats:" in captured.err
        for stage in (
            "parse",
            "syntactic-rules",
            "project-model",
            "taint-fixpoint",
            "deep-rules",
        ):
            assert stage in captured.err
        assert "fixpoint_iterations=" in captured.err
        # stdout stays machine-readable despite --stats
        payload = json.loads(captured.out)
        assert payload["findings"] == []

    def test_shallow_stats_skip_deep_stages(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "r1_good.py"), "--stats"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "parse" in captured.err
        assert "taint-fixpoint" not in captured.err
