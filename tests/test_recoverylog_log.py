"""Tests for repro.recoverylog.log."""

import pytest

from helpers import make_process
from repro.errors import LogFormatError
from repro.recoverylog.entry import LogEntry
from repro.recoverylog.log import RecoveryLog


class TestContainer:
    def test_entries_sorted_on_construction(self):
        log = RecoveryLog(
            [
                LogEntry.success(5.0, "m"),
                LogEntry.symptom(1.0, "m", "error:X"),
            ]
        )
        assert [e.time for e in log] == [1.0, 5.0]

    def test_append_out_of_order_keeps_sorted(self):
        log = RecoveryLog([LogEntry.symptom(10.0, "m", "error:X")])
        log.append(LogEntry.symptom(1.0, "m", "error:Y"))
        assert [e.time for e in log] == [1.0, 10.0]

    def test_append_in_order_fast_path(self):
        log = RecoveryLog()
        log.append(LogEntry.symptom(1.0, "m", "error:X"))
        log.append(LogEntry.success(2.0, "m"))
        assert len(log) == 2

    def test_append_rejects_non_entry(self):
        log = RecoveryLog()
        with pytest.raises(LogFormatError):
            log.append("not an entry")

    def test_extend_rejects_non_entry(self):
        log = RecoveryLog()
        with pytest.raises(LogFormatError):
            log.extend([LogEntry.symptom(1.0, "m", "e"), 42])

    def test_machines(self):
        log = RecoveryLog(
            [
                LogEntry.symptom(1.0, "m-a", "error:X"),
                LogEntry.symptom(2.0, "m-b", "error:X"),
            ]
        )
        assert log.machines() == {"m-a", "m-b"}

    def test_start_and_end_time(self):
        log = RecoveryLog(
            [
                LogEntry.symptom(3.0, "m", "error:X"),
                LogEntry.success(9.0, "m"),
            ]
        )
        assert log.start_time == 3.0
        assert log.end_time == 9.0

    def test_equality(self):
        entries = [LogEntry.symptom(1.0, "m", "error:X")]
        assert RecoveryLog(entries) == RecoveryLog(entries)
        assert RecoveryLog(entries) != RecoveryLog()

    def test_repr_mentions_count(self):
        assert "entries=0" in repr(RecoveryLog())


class TestSegmentationCache:
    def test_to_processes(self):
        process = make_process(["TRYNOP"])
        log = RecoveryLog(process.entries)
        assert log.to_processes() == (process,)

    def test_cache_invalidated_on_append(self):
        p1 = make_process(["TRYNOP"], machine="m", start=0.0)
        log = RecoveryLog(p1.entries)
        assert len(log.to_processes()) == 1
        p2 = make_process(["REBOOT"], machine="m", start=10_000.0)
        log.extend(p2.entries)
        assert len(log.to_processes()) == 2

    def test_segmentation_result_cached(self):
        log = RecoveryLog(make_process(["TRYNOP"]).entries)
        assert log.segmentation() is log.segmentation()


class TestFiltered:
    def test_filter_by_machine(self):
        p1 = make_process(["TRYNOP"], machine="m-a")
        p2 = make_process(["REBOOT"], machine="m-b")
        log = RecoveryLog(list(p1.entries) + list(p2.entries))
        only_a = log.filtered(machines={"m-a"})
        assert only_a.machines() == {"m-a"}

    def test_filter_none_copies(self):
        log = RecoveryLog(make_process(["TRYNOP"]).entries)
        copy = log.filtered()
        assert copy == log and copy is not log
