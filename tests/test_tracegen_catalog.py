"""Tests for synthetic fault-catalog generation."""

import numpy as np
import pytest

from repro.actions import default_catalog
from repro.cluster.faults import validate_fault_catalog
from repro.errors import ConfigurationError
from repro.tracegen.catalog_gen import (
    CatalogSpec,
    FaultProfile,
    generate_fault_catalog,
    profile_of,
)


class TestCatalogSpec:
    def test_defaults_valid(self):
        CatalogSpec()

    def test_profile_mix_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            CatalogSpec(profile_mix=(0.5, 0.5, 0.5, 0.0))

    def test_reimage_rank_bounds(self):
        with pytest.raises(ConfigurationError):
            CatalogSpec(fault_count=10, reimage_ranks=(10,))

    def test_bad_secondary_range(self):
        with pytest.raises(ConfigurationError):
            CatalogSpec(secondary_symptom_range=(3, 1))


class TestGeneration:
    @pytest.fixture(scope="class")
    def catalog(self):
        return generate_fault_catalog(CatalogSpec(), seed=11)

    def test_fault_count(self, catalog):
        assert len(catalog) == 97

    def test_deterministic_for_seed(self):
        a = generate_fault_catalog(CatalogSpec(), seed=5)
        b = generate_fault_catalog(CatalogSpec(), seed=5)
        assert [f.primary_symptom for f in a] == [
            f.primary_symptom for f in b
        ]
        assert [f.cure_probabilities for f in a] == [
            f.cure_probabilities for f in b
        ]

    def test_passes_hypothesis_validation(self, catalog):
        validate_fault_catalog(catalog, default_catalog())

    def test_primary_symptoms_unique(self, catalog):
        primaries = [f.primary_symptom for f in catalog]
        assert len(set(primaries)) == len(primaries)

    def test_pinned_ranks_are_reimage_needing(self, catalog):
        faults = catalog.fault_types
        for rank in (0, 34, 38):
            assert profile_of(faults[rank]) is FaultProfile.REIMAGE_NEEDING

    def test_no_hardware_in_hot_ranks(self, catalog):
        for fault in catalog.fault_types[:20]:
            assert profile_of(fault) is not FaultProfile.HARDWARE

    def test_head_coverage_matches_spec(self, catalog):
        probabilities = np.array(
            [f.weight for f in catalog.fault_types], dtype=float
        )
        probabilities /= probabilities.sum()
        head = probabilities[:40].sum()
        assert abs(head - 0.9868) < 0.01

    def test_head_decay_ratio(self, catalog):
        weights = [f.weight for f in catalog.fault_types]
        assert weights[0] / weights[39] == pytest.approx(30.0, rel=0.01)

    def test_tail_is_uniform(self, catalog):
        tail = {f.weight for f in catalog.fault_types[40:]}
        assert len(tail) == 1

    def test_small_fault_count_supported(self):
        catalog = generate_fault_catalog(
            CatalogSpec(fault_count=8, reimage_ranks=(0,)), seed=3
        )
        assert len(catalog) == 8
