"""Fast, small-scale runs of the heavy figure drivers (8-14).

The benchmark suite exercises them at full scale; these tests verify the
drivers' mechanics (series shapes, caching, rendering) with a miniature
scenario and a fast pipeline configuration.
"""

import statistics

import pytest

from repro.core.config import PipelineConfig
from repro.experiments.figures import (
    fig8_trained_relative_cost,
    fig9_trained_total_cost,
    fig10_coverage,
    fig11_hybrid_per_type,
    fig12_hybrid_total_cost,
    fig13_training_time,
    fig14_selection_tree_quality,
)
from repro.experiments.scenario import build_scenario
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig
from repro.tracegen.workload import small_config

FRACTIONS = (0.4, 0.6)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(small_config(seed=17), top_k=6)


@pytest.fixture(scope="module")
def config():
    return PipelineConfig(
        top_k_types=6,
        qlearning=QLearningConfig(max_sweeps=90, episodes_per_sweep=16),
        tree=SelectionTreeConfig(min_sweeps=30, check_interval=15),
    )


class TestTrainedFigures:
    def test_fig8_series_per_fraction(self, scenario, config):
        result = fig8_trained_relative_cost(
            scenario, FRACTIONS, config=config
        )
        assert len(result.evaluations) == 2
        for evaluation in result.evaluations:
            ratios = evaluation.relative_costs()
            assert ratios
            assert all(0.2 < r < 2.5 for r in ratios.values())
        assert "Figure 8" in result.render()

    def test_fig9_totals(self, scenario, config):
        result = fig9_trained_total_cost(scenario, FRACTIONS, config=config)
        by_fraction = result.relative_by_fraction()
        assert set(by_fraction) == set(FRACTIONS)
        # The trained policy is never worse than the incumbent overall
        # (conservative improvement guarantees this on the training set;
        # the held-out future can wobble a little).
        assert all(v < 1.1 for v in by_fraction.values())
        assert "user-defined" in result.render()

    def test_fig10_coverage_fractions(self, scenario, config):
        result = fig10_coverage(scenario, FRACTIONS, config=config)
        for evaluation in result.evaluations:
            coverages = evaluation.coverages()
            assert all(0.0 <= c <= 1.0 for c in coverages.values())
        assert "coverage" in result.render().lower()

    def test_fig11_two_panels(self, scenario, config):
        results = fig11_hybrid_per_type(scenario, FRACTIONS, config=config)
        assert len(results) == 2
        for result in results:
            trained_eval, hybrid_eval = result.evaluations
            assert hybrid_eval.overall_coverage == 1.0

    def test_fig12_hybrid_totals(self, scenario, config):
        result = fig12_hybrid_total_cost(scenario, FRACTIONS, config=config)
        for _user, hybrid in result.pairs:
            assert hybrid.overall_coverage == 1.0
            assert hybrid.overall_relative_cost < 1.1


class TestTreeComparisonFigures:
    def test_fig13_and_fig14_share_one_computation(self, scenario, config):
        first = fig13_training_time(
            scenario, 0.5, standard_cap=120, config=config
        )
        second = fig14_selection_tree_quality(
            scenario, 0.5, standard_cap=120, config=config
        )
        assert first is second  # cached comparison object

    def test_fig13_tree_is_faster(self, scenario, config):
        result = fig13_training_time(
            scenario, 0.5, standard_cap=120, config=config
        )
        tree = list(result.tree_sweeps.values())
        standard = list(result.standard_sweeps.values())
        assert statistics.median(tree) < statistics.median(standard)
        assert "Figure 13" in result.render_fig13()

    def test_fig14_tree_not_worse(self, scenario, config):
        result = fig14_selection_tree_quality(
            scenario, 0.5, standard_cap=120, config=config
        )
        assert (
            result.tree_eval.overall_relative_cost
            <= result.standard_eval.overall_relative_cost + 0.05
        )
        assert "Figure 14" in result.render_fig14()


class TestBundleCacheKeying:
    def test_distinct_configs_do_not_collide(self, scenario, config):
        from repro.experiments.bundle import train_fraction

        other = PipelineConfig(
            top_k_types=2,
            qlearning=QLearningConfig(max_sweeps=60, episodes_per_sweep=8),
            tree=SelectionTreeConfig(min_sweeps=20, check_interval=10),
        )
        a = train_fraction(scenario, 0.4, config=config)
        b = train_fraction(scenario, 0.4, config=other)
        assert a is not b
        assert len(b.learner.registry_) <= 2
        # Same config hits the cache.
        assert train_fraction(scenario, 0.4, config=config) is a
