"""Tests for policy and Q-table persistence."""

import json

import pytest

from repro.errors import LogFormatError
from repro.learning.qtable import QTable
from repro.mdp.state import RecoveryState
from repro.policies.serialization import (
    load_policy,
    load_qtable,
    save_policy,
    save_qtable,
)
from repro.policies.trained import TrainedPolicy

S0 = RecoveryState.initial("error:X")
S1 = S0.after("REIMAGE", False)
ACTIONS = ["TRYNOP", "REBOOT", "REIMAGE", "RMA"]


@pytest.fixture
def policy():
    return TrainedPolicy(
        {S0: ("REIMAGE", 7200.0), S1: ("RMA", 172800.0)},
        label="night-shift",
    )


class TestPolicyRoundTrip:
    def test_round_trip_preserves_rules(self, tmp_path, policy):
        path = tmp_path / "policy.json"
        count = save_policy(policy, path)
        assert count == 2
        loaded = load_policy(path)
        assert loaded.rules == policy.rules
        assert loaded.name == "night-shift"

    def test_loaded_policy_decides_identically(self, tmp_path, policy):
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        loaded = load_policy(path)
        assert loaded.decide(S0).action == policy.decide(S0).action
        assert loaded.decide(S1).expected_cost == pytest.approx(172800.0)

    def test_file_is_human_auditable(self, tmp_path, policy):
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        payload = json.loads(path.read_text())
        assert payload["format"].startswith("repro/trained-policy")
        assert payload["rules"][0]["error_type"] == "error:X"

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else", "rules": []}')
        with pytest.raises(LogFormatError, match="format"):
            load_policy(path)

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(LogFormatError, match="JSON"):
            load_policy(path)

    def test_bad_rule_record_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro/trained-policy@1",
                    "rules": [{"error_type": "e", "tried": []}],
                }
            )
        )
        with pytest.raises(LogFormatError, match="bad rule"):
            load_policy(path)


class TestQTableRoundTrip:
    def _table(self):
        table = QTable(ACTIONS)
        table.update(S0, "TRYNOP", 600.0)
        table.update(S0, "TRYNOP", 800.0)
        table.update(S0, "REIMAGE", 7200.0)
        table.update(S1, "RMA", 172800.0)
        return table

    def test_round_trip_values_and_visits(self, tmp_path):
        table = self._table()
        path = tmp_path / "qtable.json"
        count = save_qtable(table, path)
        assert count == 3
        loaded = load_qtable(path)
        assert loaded.value(S0, "TRYNOP") == pytest.approx(700.0)
        assert loaded.visit_count(S0, "TRYNOP") == 2
        assert loaded.value(S1, "RMA") == pytest.approx(172800.0)

    def test_training_resumes_with_correct_alpha(self, tmp_path):
        table = self._table()
        path = tmp_path / "qtable.json"
        save_qtable(table, path)
        loaded = load_qtable(path)
        # Third visit -> alpha = 1/3; average of 600, 800, 900 = 766.67.
        loaded.update(S0, "TRYNOP", 900.0)
        assert loaded.value(S0, "TRYNOP") == pytest.approx(2300.0 / 3)

    def test_greedy_preserved(self, tmp_path):
        table = self._table()
        path = tmp_path / "qtable.json"
        save_qtable(table, path)
        loaded = load_qtable(path)
        assert loaded.greedy_action(S0) == table.greedy_action(S0)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "x", "actions": [], "entries": []}')
        with pytest.raises(LogFormatError, match="format"):
            load_qtable(path)

    def test_restore_rejects_zero_visits(self):
        from repro.errors import TrainingError

        table = QTable(ACTIONS)
        with pytest.raises(TrainingError):
            table.restore(S0, "TRYNOP", 1.0, visits=0)


class TestEndToEndDeployment:
    def test_trained_pipeline_policy_survives_disk(
        self, tmp_path, small_processes
    ):
        from repro.core import PipelineConfig, RecoveryPolicyLearner
        from repro.evaluation import time_ordered_split
        from repro.learning.qlearning import QLearningConfig
        from repro.learning.selection_tree import SelectionTreeConfig

        train, test = time_ordered_split(small_processes, 0.5)
        learner = RecoveryPolicyLearner(
            config=PipelineConfig(
                top_k_types=3,
                qlearning=QLearningConfig(
                    max_sweeps=80, episodes_per_sweep=16
                ),
                tree=SelectionTreeConfig(min_sweeps=30, check_interval=15),
            )
        ).fit(train)
        path = tmp_path / "deployed.json"
        save_policy(learner.trained_policy(), path)
        deployed = load_policy(path)
        evaluator = learner.make_evaluator(test, filter_test_noise=False)
        original = evaluator.evaluate(learner.trained_policy())
        reloaded = evaluator.evaluate(deployed)
        assert reloaded.overall_relative_cost == pytest.approx(
            original.overall_relative_cost
        )
