"""Tests for the decision server: lookups, fallback routing, hot reload.

The race test at the bottom is the one the design stands on: concurrent
readers hammering ``decide_batch`` while a writer publishes new policy
generations must never observe a torn table — every batch is answered
entirely by one generation.
"""

import threading
import time

import pytest

from repro.actions import default_catalog
from repro.core.online import RollingRetrainer
from repro.errors import ConfigurationError
from repro.mdp.state import RecoveryState
from repro.policies.binary import load_policy_binary, save_policy_binary
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.serving import DecisionServer, PolicyVersion, ServedDecision

S0 = RecoveryState.initial("error:X")
S1 = S0.after("REIMAGE", False)
UNKNOWN = RecoveryState.initial("error:never-seen")


@pytest.fixture
def trained():
    return TrainedPolicy(
        {S0: ("REIMAGE", 7200.0), S1: ("RMA", 172800.0)},
        label="t1",
    )


@pytest.fixture
def server(trained):
    return DecisionServer(trained, UserDefinedPolicy(default_catalog()))


class TestDecide:
    def test_hit_uses_primary(self, server):
        decision = server.decide(S0)
        assert decision.action == "REIMAGE"
        assert decision.source == "serving:t1"
        assert decision.expected_cost == pytest.approx(7200.0)
        assert decision.version == 1
        assert not decision.fell_back

    def test_unknown_state_falls_back(self, server):
        decision = server.decide(UNKNOWN)
        assert decision.fell_back
        assert decision.source.startswith("serving:")
        # The user-defined ladder starts from the weakest action.
        assert decision.action == "TRYNOP"

    def test_terminal_state_rejected(self, server):
        with pytest.raises(ConfigurationError, match="terminal"):
            server.decide(S0.after("REIMAGE", True))

    def test_stats_accumulate(self, server):
        server.decide(S0)
        server.decide(UNKNOWN)
        server.decide(UNKNOWN)
        assert server.decision_count == 3
        assert server.fallback_count == 2
        assert server.fallback_rate == pytest.approx(2 / 3)
        assert server.decisions_by_version() == {1: 3}

    def test_default_fallback_is_user_defined(self, trained):
        plain = DecisionServer(trained)
        assert plain.decide(UNKNOWN).action == "TRYNOP"


class TestDecideBatch:
    def test_batch_mixes_hits_and_fallbacks(self, server):
        decisions = server.decide_batch([S0, UNKNOWN, S1])
        assert [d.action for d in decisions] == ["REIMAGE", "TRYNOP", "RMA"]
        assert [d.fell_back for d in decisions] == [False, True, False]
        assert {d.version for d in decisions} == {1}

    def test_batch_matches_scalar(self, server):
        states = [S0, S1, UNKNOWN, S0]
        batched = server.decide_batch(states)
        for state, from_batch in zip(states, batched):
            scalar = server.decide(state)
            assert from_batch.action == scalar.action
            assert from_batch.expected_cost == scalar.expected_cost
            assert from_batch.fell_back == scalar.fell_back

    def test_empty_batch(self, server):
        assert server.decide_batch([]) == []
        assert server.decision_count == 0

    def test_works_with_array_policy(self, tmp_path, trained):
        path = tmp_path / "p.rpb"
        save_policy_binary(trained, path)
        array_server = DecisionServer(
            load_policy_binary(path), UserDefinedPolicy(default_catalog())
        )
        decisions = array_server.decide_batch([S0, UNKNOWN, S1])
        assert [d.action for d in decisions] == ["REIMAGE", "TRYNOP", "RMA"]


class TestPublish:
    def test_publish_bumps_version(self, server):
        replacement = TrainedPolicy({S0: ("REBOOT", 60.0)}, label="t2")
        deployed = server.publish(replacement)
        assert isinstance(deployed, PolicyVersion)
        assert deployed.version == 2
        assert server.version == 2
        decision = server.decide(S0)
        assert decision.action == "REBOOT"
        assert decision.version == 2

    def test_old_rules_gone_after_publish(self, server):
        server.publish(TrainedPolicy({S0: ("REBOOT", 60.0)}, label="t2"))
        assert server.decide(S1).fell_back

    def test_fallback_kept_unless_replaced(self, server, trained):
        server.publish(trained)
        assert server.decide(UNKNOWN).action == "TRYNOP"

    def test_decisions_tracked_per_version(self, server, trained):
        server.decide(S0)
        server.publish(trained)
        server.decide(S0)
        server.decide(S0)
        assert server.decisions_by_version() == {1: 1, 2: 2}


class TestRetrainerHook:
    def test_retrain_publishes_to_server(self, server, small_processes):
        retrainer = RollingRetrainer(
            window=500, retrain_every=50, min_history=10
        )
        server.attach_retrainer(retrainer)
        before = server.version
        for process in small_processes:
            retrainer.observe(process)
        assert retrainer.retrain_count > 0
        assert server.version == before + retrainer.retrain_count

    def test_hybrid_publication_unbundled(self, server, small_processes):
        retrainer = RollingRetrainer(
            window=500, retrain_every=50, min_history=10
        )
        server.attach_retrainer(retrainer)
        for process in small_processes:
            retrainer.observe(process)
        # The served primary is the trained policy, not the hybrid —
        # fallback routing (and its stats) stay with the server.
        snapshot = server.snapshot()
        assert snapshot.primary.name != "hybrid"
        assert server.decide(UNKNOWN).fell_back


class TestHotReloadRace:
    def test_no_torn_batches_under_concurrent_publish(self, trained):
        """Readers must never see two generations inside one batch."""
        server = DecisionServer(
            trained, UserDefinedPolicy(default_catalog())
        )
        alternates = [
            TrainedPolicy({S0: ("REIMAGE", 7200.0)}, label="a"),
            TrainedPolicy({S0: ("REBOOT", 60.0)}, label="b"),
        ]
        states = [S0, UNKNOWN, S1] * 20
        stop = threading.Event()
        torn = []
        versions_seen = set()

        def reader():
            while not stop.is_set():
                decisions = server.decide_batch(states)
                batch_versions = {d.version for d in decisions}
                versions_seen.update(batch_versions)
                if len(batch_versions) != 1:
                    torn.append(batch_versions)
                    return

        def writer():
            # Yield between publish bursts: 300 uncontended publishes
            # fit inside one interpreter time slice, and a writer that
            # finishes before any reader starts its second batch never
            # overlaps a generation change with an in-flight batch.
            for i in range(300):
                server.publish(alternates[i % 2])
                if i % 10 == 0:
                    time.sleep(0.002)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        publisher = threading.Thread(target=writer)
        publisher.start()
        publisher.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert torn == []
        assert len(versions_seen) > 1, (
            "the race test never overlapped a publish with a batch; "
            "widen the publish loop"
        )
        assert server.version == 301

    def test_batch_consistent_with_its_version(self, trained):
        """A batch's answers must all come from the generation it reports."""
        server = DecisionServer(
            trained, UserDefinedPolicy(default_catalog())
        )
        by_label = {
            "a": TrainedPolicy({S0: ("REIMAGE", 1.0)}, label="a"),
            "b": TrainedPolicy({S0: ("REBOOT", 2.0)}, label="b"),
        }
        expected_action = {"a": "REIMAGE", "b": "REBOOT"}
        version_label = {1: "a"}
        server.publish(by_label["a"])
        version_label[2] = "a"
        stop = threading.Event()
        errors = []

        def writer():
            labels = ["a", "b"]
            for i in range(200):
                label = labels[i % 2]
                deployed = server.publish(by_label[label])
                version_label[deployed.version] = label

        def reader():
            while not stop.is_set():
                decisions = server.decide_batch([S0] * 32)
                version = decisions[0].version
                label = version_label.get(version)
                if label is None:
                    continue  # mapping not yet recorded by the writer
                want = expected_action[label]
                if any(d.action != want for d in decisions):
                    errors.append((version, label))
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        publisher = threading.Thread(target=writer)
        publisher.start()
        publisher.join()
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []


class TestServedDecision:
    def test_immutable(self, server):
        decision = server.decide(S0)
        assert isinstance(decision, ServedDecision)
        with pytest.raises(AttributeError):
            decision.action = "RMA"


class TestErrorTypeStats:
    def test_hits_fallbacks_and_unknown_classified(self, server):
        server.decide(S0)
        server.decide(S1)
        server.decide(UNKNOWN)
        # Known error type, but a state outside the trained table.
        server.decide(S0.after("REBOOT", False))
        stats = server.error_type_stats()
        assert stats["error:X"] == {
            "hits": 2, "fallbacks": 1, "unknown": 0,
        }
        assert stats["error:never-seen"] == {
            "hits": 0, "fallbacks": 0, "unknown": 1,
        }

    def test_batch_and_scalar_count_identically(self, trained):
        scalar = DecisionServer(trained)
        batch = DecisionServer(trained)
        states = [S0, UNKNOWN, S1, S0.after("REBOOT", False)]
        for state in states:
            scalar.decide(state)
        batch.decide_batch(states)
        assert scalar.error_type_stats() == batch.error_type_stats()

    def test_stats_sorted_by_error_type(self, server):
        server.decide(UNKNOWN)
        server.decide(S0)
        assert list(server.error_type_stats()) == [
            "error:X", "error:never-seen",
        ]

    def test_empty_before_any_decision(self, server):
        assert server.error_type_stats() == {}

    def test_unknown_tracked_across_publish(self, server, trained):
        server.decide(UNKNOWN)
        server.publish(
            TrainedPolicy(
                {UNKNOWN: ("REBOOT", 100.0)}, label="t2",
            )
        )
        decision = server.decide(UNKNOWN)
        assert not decision.fell_back
        stats = server.error_type_stats()
        assert stats["error:never-seen"] == {
            "hits": 1, "fallbacks": 0, "unknown": 1,
        }

    def test_primary_without_error_types_counts_fallbacks(self):
        # A primary that does not expose error_types() cannot separate
        # unknown types from unanswered states: everything that misses
        # is a plain fallback.
        class Opaque:
            name = "opaque"

            def decide(self, state):
                from repro.errors import UnhandledStateError
                raise UnhandledStateError(state)

            def decide_batch(self, states):
                from repro.errors import UnhandledStateError
                return [UnhandledStateError(s) for s in states]

        server = DecisionServer(
            Opaque(), UserDefinedPolicy(default_catalog())
        )
        server.decide(S0)
        assert server.error_type_stats()["error:X"] == {
            "hits": 0, "fallbacks": 1, "unknown": 0,
        }
