"""Shared fixtures: the default action catalog and a small generated trace."""

from __future__ import annotations

import pytest

from repro.actions import default_catalog
from repro.tracegen.generator import generate_trace
from repro.tracegen.workload import small_config


@pytest.fixture(scope="session")
def catalog():
    """The paper's four-action catalog."""
    return default_catalog()


@pytest.fixture(scope="session")
def small_trace():
    """A tiny generated trace shared by integration-ish tests."""
    return generate_trace(small_config(seed=13))


@pytest.fixture(scope="session")
def small_processes(small_trace):
    """Completed recovery processes of the small trace."""
    return small_trace.log.to_processes()
