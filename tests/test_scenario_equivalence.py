"""Stationary-scenario equivalence: frozen references and wrapper identity.

Two contracts pin the scenario-model refactor:

* **Frozen references** — sha256 digests of (rendered log entries +
  per-channel draw-count matrices) captured on the pre-refactor
  backends.  The refactored backends must reproduce them exactly, for
  the historical stream discipline and for the machine discipline on
  both backends.  Any change to these digests is a break of the
  bit-compatibility contract, not a test to update.
* **Wrapper identity** — a stationary single-class
  :class:`~repro.scenario.model.ScenarioModel` must be bit-identical to
  passing the bare :class:`~repro.cluster.faults.FaultCatalog`, on both
  backends: same RNG draws, same log, same downtime, same telemetry.

Plus the epoch-boundary semantics the drift feature hinges on: a
catalog switch at time *t* affects onsets strictly at times ``>= t``,
with no off-by-one between the event backend's scalar resolution and
the fleet backend's vectorized wave resolution.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.actions import default_catalog
from repro.cluster.cluster import ClusterConfig, ClusterSimulator
from repro.cluster.faults import FaultCatalog, FaultType
from repro.cluster.fleet import FleetEngine, simulate_cluster
from repro.errors import ConfigurationError
from repro.policies.static import AlwaysStrongestPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.scenario import (
    CascadeCoupling,
    Epoch,
    MachineClass,
    ScenarioModel,
)
from repro.util.rng import RngStreams

from tests.test_fleet_equivalence import (
    assert_equivalent,
    cluster_configs,
    fault_catalogs,
    run_both,
)

CATALOG = default_catalog()
DAY = 86_400.0


def reference_faults() -> FaultCatalog:
    return FaultCatalog(
        [
            FaultType(
                name="transient",
                primary_symptom="error:Transient",
                cure_probabilities={"TRYNOP": 0.7, "REBOOT": 0.95},
                weight=3.0,
            ),
            FaultType(
                name="hard",
                primary_symptom="error:Hard",
                secondary_symptoms=("warn:Side", "warn:Other"),
                secondary_probability=0.6,
                cure_probabilities={"REIMAGE": 0.95},
                weight=1.0,
                cost_scale=1.3,
            ),
            FaultType(
                name="flaky",
                primary_symptom="error:Flaky",
                secondary_symptoms=("warn:Flaky",),
                cure_probabilities={
                    "TRYNOP": 0.4, "REBOOT": 0.6, "REIMAGE": 0.8
                },
                weight=0.5,
                cost_scale=0.7,
            ),
        ]
    )


def digest_log(log, draw_counts=None) -> str:
    """sha256 over rendered entries (+ the draw-count matrix)."""
    h = hashlib.sha256()
    for e in log.entries:
        h.update(
            f"{e.time!r}|{e.machine}|{e.kind.value}|{e.description}\n".encode()
        )
    if draw_counts is not None:
        h.update(np.ascontiguousarray(draw_counts).tobytes())
    return h.hexdigest()


#: Captured on the pre-refactor backends (commit af02af8); see the
#: module docstring.  The machine-discipline digest is shared by the
#: event backend and the fleet backend — that equality *is* the
#: differential contract.
FROZEN_CASES = {
    "base": {
        "params": dict(
            machine_count=12,
            duration=40 * DAY,
            mean_time_between_failures=4 * DAY,
            noise_probability=0.3,
        ),
        "policy": UserDefinedPolicy,
        "seed": 11,
        "event_stream": (
            "5bc01c0b1fe48ad8b0e3f32aa5180a5fff0f0ff38a8a530035459d39a3a06677"
        ),
        "machine": (
            "0969a01abc1175819b5a5b0c76846bdfb7c06689d7c6d2697f9e1dfe702e4644"
        ),
    },
    "zero-delays": {
        "params": dict(
            machine_count=6,
            duration=25 * DAY,
            mean_time_between_failures=3 * DAY,
            detection_delay_mean=0.0,
            decision_delay_mean=0.0,
            noise_probability=0.2,
        ),
        "policy": UserDefinedPolicy,
        "seed": 29,
        "event_stream": (
            "dcfbd43bde66b0628c131f7d2fcd6f367f5ad5d3a542c6ead2e6fdfcca4dd8cb"
        ),
        "machine": (
            "ce088c689e875b08499408d0191ac8b5b2709a6ec2a8544164749ba1f0ee2886"
        ),
    },
    "strongest": {
        "params": dict(
            machine_count=9,
            duration=30 * DAY,
            mean_time_between_failures=5 * DAY,
            max_actions=3,
            symptom_reemission_probability=1.0,
        ),
        "policy": AlwaysStrongestPolicy,
        "seed": 47,
        "event_stream": (
            "47811fd1ac06040478ddba64d387d110ed5bb798889bb423c0fd09d221db0de5"
        ),
        "machine": (
            "84cf1277df3a96f7e97406e03831190c64496995d88a4d9e9e6e14dd92616468"
        ),
    },
}


def _faults_variants():
    """The bare catalog and its stationary scenario wrappers."""
    return {
        "catalog": reference_faults(),
        "stationary-model": ScenarioModel.stationary(reference_faults()),
        "explicit-neutral-class": ScenarioModel(
            (Epoch(0.0, reference_faults()),),
            (MachineClass("std"),),
        ),
    }


class TestFrozenReferences:
    @pytest.mark.parametrize("case", sorted(FROZEN_CASES))
    def test_event_stream_discipline(self, case):
        """The historical default discipline, byte-for-byte."""
        spec = FROZEN_CASES[case]
        for label, faults in _faults_variants().items():
            sim = ClusterSimulator(
                ClusterConfig(**spec["params"]),
                faults,
                spec["policy"](CATALOG),
                CATALOG,
                RngStreams(spec["seed"]),
            )
            digest = digest_log(sim.run())
            assert digest == spec["event_stream"], label

    @pytest.mark.parametrize("case", sorted(FROZEN_CASES))
    def test_event_machine_discipline(self, case):
        spec = FROZEN_CASES[case]
        for label, faults in _faults_variants().items():
            sim = ClusterSimulator(
                ClusterConfig(rng_discipline="machine", **spec["params"]),
                faults,
                spec["policy"](CATALOG),
                CATALOG,
                RngStreams(spec["seed"]),
            )
            log = sim.run()
            digest = digest_log(log, sim.random_source.draw_counts())
            assert digest == spec["machine"], label

    @pytest.mark.parametrize("case", sorted(FROZEN_CASES))
    def test_fleet_backend(self, case):
        spec = FROZEN_CASES[case]
        for label, faults in _faults_variants().items():
            engine = FleetEngine(
                ClusterConfig(backend="fleet", **spec["params"]),
                faults,
                spec["policy"](CATALOG),
                CATALOG,
                RngStreams(spec["seed"]),
            )
            result = engine.run()
            digest = digest_log(result.to_log(), result.draw_counts)
            assert digest == spec["machine"], label


# ---------------------------------------------------------------------------
# Stationary wrapper identity (hypothesis differential)
# ---------------------------------------------------------------------------
class TestStationaryWrapperIdentity:
    @given(data=st.data())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_wrapped_catalog_is_bit_identical(self, data):
        """ScenarioModel.stationary(catalog) ≡ catalog on both backends:
        same log (exact floats), same draw counts, same telemetry."""
        params = data.draw(cluster_configs())
        catalog = data.draw(fault_catalogs())
        seed = data.draw(st.integers(0, 2**32 - 1))

        bare = run_both(
            params, catalog, lambda: UserDefinedPolicy(CATALOG), seed
        )
        wrapped = run_both(
            params,
            ScenarioModel.stationary(catalog),
            lambda: UserDefinedPolicy(CATALOG),
            seed,
        )
        # Each pairing is internally equivalent...
        assert_equivalent(*bare)
        assert_equivalent(*wrapped)
        # ...and the wrapper changes nothing across the pairings.
        assert bare[1] == wrapped[1]  # event logs
        assert wrapped[3].to_log() == bare[3].to_log()  # fleet logs
        assert np.array_equal(
            bare[3].draw_counts, wrapped[3].draw_counts
        )


# ---------------------------------------------------------------------------
# Epoch-boundary semantics
# ---------------------------------------------------------------------------
def _boundary_scenario(switch_time: float) -> ScenarioModel:
    """Two epochs over distinguishable fault mixes with shared identity.

    Epoch 0 draws fault ``alpha`` essentially always (weight ratio
    1 : 1e-12); epoch 1 flips the ratio.  A process's primary symptom
    therefore reads back which epoch governed its onset.
    """

    def catalog(alpha_weight: float, beta_weight: float) -> FaultCatalog:
        return FaultCatalog(
            [
                FaultType(
                    name="alpha",
                    primary_symptom="error:Alpha",
                    cure_probabilities={"REBOOT": 0.9},
                    weight=alpha_weight,
                ),
                FaultType(
                    name="beta",
                    primary_symptom="error:Beta",
                    cure_probabilities={"REBOOT": 0.9},
                    weight=beta_weight,
                ),
            ]
        )

    return ScenarioModel(
        (
            Epoch(0.0, catalog(1.0, 1e-12)),
            Epoch(switch_time, catalog(1e-12, 1.0)),
        )
    )


class TestEpochBoundary:
    def test_epoch_at_half_open_convention(self):
        scenario = _boundary_scenario(10 * DAY)
        assert scenario.epoch_at(0.0) == 0
        assert scenario.epoch_at(10 * DAY - 1e-6) == 0
        assert scenario.epoch_at(10 * DAY) == 1  # switch governs >= t
        assert scenario.epoch_at(10 * DAY + 1e-6) == 1
        assert scenario.epoch_at(-5.0) == 0  # clamps, never -1

    def test_scalar_and_vector_resolution_agree(self):
        """The event backend resolves epochs one onset at a time, the
        fleet backend a wave at a time; the formulas must agree at and
        around every boundary, including exact boundary floats."""
        t = 10 * DAY
        scenario = _boundary_scenario(t)
        times = np.array(
            [0.0, t / 2, np.nextafter(t, 0.0), t, np.nextafter(t, np.inf),
             2 * t]
        )
        vector = scenario.epochs_at(times)
        scalar = np.array([scenario.epoch_at(float(x)) for x in times])
        assert np.array_equal(vector, scalar)
        assert vector.tolist() == [0, 0, 0, 1, 1, 1]

    @pytest.mark.parametrize("backend", ["event", "fleet"])
    def test_onsets_switch_strictly_at_boundary(self, backend):
        """End to end: every onset before *t* draws from epoch 0's mix,
        every onset at or after *t* from epoch 1's."""
        switch = 15 * DAY
        scenario = _boundary_scenario(switch)
        params = dict(
            machine_count=30,
            duration=30 * DAY,
            mean_time_between_failures=2 * DAY,
            noise_probability=0.0,
        )
        if backend == "fleet":
            config = ClusterConfig(backend="fleet", **params)
        else:
            config = ClusterConfig(rng_discipline="machine", **params)
        engine = FleetEngine(
            ClusterConfig(backend="fleet", **params),
            scenario,
            UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(101),
        )
        result = engine.run()
        log = (
            result.to_log()
            if backend == "fleet"
            else ClusterSimulator(
                config,
                scenario,
                UserDefinedPolicy(CATALOG),
                CATALOG,
                RngStreams(101),
            ).run()
        )
        processes = log.to_processes()
        assert len(processes) > 50
        before = [p for p in processes if p.entries[0].time < switch]
        after = [p for p in processes if p.entries[0].time >= switch]
        assert before and after
        assert all(
            p.symptoms[0] == "error:Alpha" for p in before
        ), "an onset before the switch drew from the new epoch"
        assert all(
            p.symptoms[0] == "error:Beta" for p in after
        ), "an onset at/after the switch drew from the old epoch"

    def test_event_and_fleet_agree_under_drift(self):
        """The boundary scenario is bit-identical across backends —
        no off-by-one between scalar and wave epoch resolution."""
        scenario = _boundary_scenario(12 * DAY)
        # No noise: the boundary catalog's extreme 1:1e-12 weights make
        # the noise redraw loop (reject the primary's own fault) a
        # ~1e12-iteration rejection sample.  Noise-under-drift coverage
        # lives in the fuzz sweep, whose weights are sane.
        params = dict(
            machine_count=14,
            duration=24 * DAY,
            mean_time_between_failures=2 * DAY,
            noise_probability=0.0,
        )
        outputs = run_both(
            params, scenario, lambda: UserDefinedPolicy(CATALOG), seed=7
        )
        assert_equivalent(*outputs)

    def test_onset_epoch_governs_whole_process(self):
        """A process straddling the boundary keeps its onset epoch's
        rules: cures drawn mid-process use the catalog active at fault
        onset, not at cure time (pinned by cross-backend identity on a
        scenario whose epochs differ only in cure probabilities)."""

        def catalog(cure: float) -> FaultCatalog:
            return FaultCatalog(
                [
                    FaultType(
                        name="only",
                        primary_symptom="error:Only",
                        cure_probabilities={"TRYNOP": cure, "REBOOT": cure},
                    )
                ]
            )

        scenario = ScenarioModel(
            (Epoch(0.0, catalog(0.05)), Epoch(8 * DAY, catalog(0.95)))
        )
        params = dict(
            machine_count=10,
            duration=16 * DAY,
            mean_time_between_failures=1.5 * DAY,
            noise_probability=0.0,
        )
        outputs = run_both(
            params, scenario, lambda: UserDefinedPolicy(CATALOG), seed=13
        )
        assert_equivalent(*outputs)


# ---------------------------------------------------------------------------
# Cascade routing
# ---------------------------------------------------------------------------
def _cascading_scenario(strength: float = 0.4) -> ScenarioModel:
    catalog = reference_faults()
    per_pair = strength / (2 * 1 * len(catalog))
    row = {f.name: per_pair for f in catalog}
    return ScenarioModel(
        (Epoch(0.0, catalog),),
        cascade=CascadeCoupling(
            triggers={f.name: dict(row) for f in catalog},
            radius=1,
            delay_low=60.0,
            delay_high=1800.0,
        ),
    )


class TestCascadeRouting:
    def test_fleet_engine_rejects_cascades(self):
        with pytest.raises(ConfigurationError, match="cascad"):
            FleetEngine(
                ClusterConfig(
                    backend="fleet",
                    machine_count=8,
                    duration=10 * DAY,
                    mean_time_between_failures=2 * DAY,
                ),
                _cascading_scenario(),
                UserDefinedPolicy(CATALOG),
                CATALOG,
            )

    def test_simulate_cluster_falls_back_to_event(self):
        """A fleet request with a cascading scenario runs on the event
        backend under the machine discipline — same log either way."""
        params = dict(
            machine_count=8,
            duration=10 * DAY,
            mean_time_between_failures=2 * DAY,
            noise_probability=0.1,
        )
        scenario = _cascading_scenario()
        via_fleet_request = simulate_cluster(
            ClusterConfig(backend="fleet", **params),
            scenario,
            UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(19),
        )
        reference = ClusterSimulator(
            ClusterConfig(rng_discipline="machine", **params),
            _cascading_scenario(),
            UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(19),
        ).run()
        assert via_fleet_request == reference

    def test_cascades_induce_extra_onsets(self):
        """With coupling on, the same seed produces strictly more
        recovery processes than the independent baseline."""
        params = dict(
            machine_count=20,
            duration=30 * DAY,
            mean_time_between_failures=2 * DAY,
            noise_probability=0.0,
            rng_discipline="machine",
        )

        def run(faults):
            return ClusterSimulator(
                ClusterConfig(**params),
                faults,
                UserDefinedPolicy(CATALOG),
                CATALOG,
                RngStreams(23),
            ).run()

        baseline = len(run(reference_faults()).to_processes())
        cascaded = len(run(_cascading_scenario(0.8)).to_processes())
        assert cascaded > baseline

    def test_cascade_is_reproducible(self):
        params = dict(
            machine_count=10,
            duration=15 * DAY,
            mean_time_between_failures=2 * DAY,
            rng_discipline="machine",
        )

        def run():
            return ClusterSimulator(
                ClusterConfig(**params),
                _cascading_scenario(),
                UserDefinedPolicy(CATALOG),
                CATALOG,
                RngStreams(31),
            ).run()

        assert run() == run()
