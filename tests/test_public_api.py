"""Smoke tests of the top-level public API surface."""

import pytest

import repro


class TestExports:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_names_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_quickstart_flow_smoke(self, small_trace):
        """The README/quickstart call sequence works end to end."""
        from repro import (
            PipelineConfig,
            RecoveryPolicyLearner,
            time_ordered_split,
        )
        from repro.learning.qlearning import QLearningConfig
        from repro.learning.selection_tree import SelectionTreeConfig

        train, test = time_ordered_split(
            small_trace.log.to_processes(), 0.5
        )
        config = PipelineConfig(
            top_k_types=4,
            qlearning=QLearningConfig(
                max_sweeps=80, episodes_per_sweep=16
            ),
            tree=SelectionTreeConfig(min_sweeps=30, check_interval=15),
        )
        learner = RecoveryPolicyLearner(config=config).fit(train)
        result = learner.make_evaluator(test).evaluate(
            learner.hybrid_policy()
        )
        assert 0.0 < result.overall_relative_cost <= 1.1

    def test_log_round_trip_via_api(self, tmp_path, small_trace):
        from repro import read_log_jsonl, write_log_jsonl

        path = tmp_path / "log.jsonl"
        write_log_jsonl(small_trace.log, path)
        assert read_log_jsonl(path) == small_trace.log
