"""Tests for repro.recoverylog.process: structure, views, segmentation."""

import pytest

from helpers import make_process
from repro.errors import SegmentationError
from repro.recoverylog.entry import LogEntry
from repro.recoverylog.process import (
    RecoveryProcess,
    segment_log,
    time_ordered_split,
)


class TestProcessInvariants:
    def test_must_start_with_symptom(self):
        entries = (
            LogEntry.action(0.0, "m", "REBOOT"),
            LogEntry.success(1.0, "m"),
        )
        with pytest.raises(SegmentationError):
            RecoveryProcess("m", entries)

    def test_must_end_with_success(self):
        entries = (
            LogEntry.symptom(0.0, "m", "error:X"),
            LogEntry.action(1.0, "m", "REBOOT"),
        )
        with pytest.raises(SegmentationError):
            RecoveryProcess("m", entries)

    def test_times_must_be_monotone(self):
        entries = (
            LogEntry.symptom(5.0, "m", "error:X"),
            LogEntry.success(1.0, "m"),
        )
        with pytest.raises(SegmentationError):
            RecoveryProcess("m", entries)

    def test_mid_process_success_rejected(self):
        entries = (
            LogEntry.symptom(0.0, "m", "error:X"),
            LogEntry.success(1.0, "m"),
            LogEntry.success(2.0, "m"),
        )
        with pytest.raises(SegmentationError):
            RecoveryProcess("m", entries)

    def test_foreign_machine_rejected(self):
        entries = (
            LogEntry.symptom(0.0, "m", "error:X"),
            LogEntry.success(1.0, "other"),
        )
        with pytest.raises(SegmentationError):
            RecoveryProcess("m", entries)


class TestDerivedViews:
    def test_error_type_is_initial_symptom(self):
        process = make_process(["TRYNOP"], error_type="error:Boom")
        assert process.error_type == "error:Boom"

    def test_symptom_set_includes_extras(self):
        process = make_process(
            ["TRYNOP"], extra_symptoms=["warn:A", "warn:B"]
        )
        assert process.symptom_set == {"error:X", "warn:A", "warn:B"}

    def test_actions_in_order(self):
        process = make_process(["TRYNOP", "REBOOT", "REIMAGE"])
        assert process.actions == ("TRYNOP", "REBOOT", "REIMAGE")

    def test_attempts_durations_and_outcomes(self):
        process = make_process(["TRYNOP", "REBOOT"], step=600.0)
        attempts = process.attempts
        assert len(attempts) == 2
        assert attempts[0].duration == pytest.approx(600.0)
        assert not attempts[0].succeeded
        assert attempts[1].succeeded

    def test_final_attempt_duration_spans_to_success(self):
        process = make_process(["REBOOT"], step=450.0)
        assert process.attempts[0].duration == pytest.approx(450.0)

    def test_downtime(self):
        process = make_process(
            ["TRYNOP"], start=100.0, step=600.0, detection_delay=60.0
        )
        assert process.downtime == pytest.approx(660.0)

    def test_final_action(self):
        process = make_process(["TRYNOP", "RMA"])
        assert process.final_action == "RMA"

    def test_render_contains_rows(self):
        text = make_process(["REBOOT"]).render()
        assert "REBOOT" in text and "Success" in text


class TestSegmentation:
    def test_splits_two_processes_same_machine(self):
        p1 = make_process(["TRYNOP"], machine="m", start=0.0)
        p2 = make_process(["REBOOT"], machine="m", start=10_000.0)
        entries = list(p1.entries) + list(p2.entries)
        result = segment_log(entries)
        assert len(result.processes) == 2
        assert result.processes[0].actions == ("TRYNOP",)
        assert result.processes[1].actions == ("REBOOT",)

    def test_machines_are_independent(self):
        p1 = make_process(["TRYNOP"], machine="m-a", start=0.0)
        p2 = make_process(["REBOOT"], machine="m-b", start=5.0)
        result = segment_log(list(p1.entries) + list(p2.entries))
        assert len(result.processes) == 2

    def test_interleaved_entries_resolve_by_machine(self):
        p1 = make_process(["TRYNOP"], machine="m-a", start=0.0)
        p2 = make_process(["REBOOT"], machine="m-b", start=1.0)
        mixed = sorted(list(p1.entries) + list(p2.entries))
        result = segment_log(mixed)
        by_machine = {p.machine: p for p in result.processes}
        assert by_machine["m-a"].actions == ("TRYNOP",)
        assert by_machine["m-b"].actions == ("REBOOT",)

    def test_trailing_incomplete_kept(self):
        p1 = make_process(["TRYNOP"], machine="m", start=0.0)
        trailing = [
            LogEntry.symptom(20_000.0, "m", "error:Y"),
            LogEntry.action(20_100.0, "m", "REBOOT"),
        ]
        result = segment_log(list(p1.entries) + trailing)
        assert len(result.processes) == 1
        assert len(result.incomplete) == 1
        assert result.completion_ratio == pytest.approx(0.5)

    def test_orphaned_entries_reported(self):
        entries = [
            LogEntry.action(0.0, "m", "REBOOT"),
            LogEntry.success(1.0, "m"),
        ]
        result = segment_log(entries)
        assert not result.processes
        assert len(result.orphaned) == 2

    def test_processes_sorted_by_start_time(self):
        p_late = make_process(["TRYNOP"], machine="m-a", start=500.0)
        p_early = make_process(["REBOOT"], machine="m-b", start=0.0)
        result = segment_log(list(p_late.entries) + list(p_early.entries))
        assert [p.machine for p in result.processes] == ["m-b", "m-a"]

    def test_empty_log(self):
        result = segment_log([])
        assert result.processes == ()
        assert result.completion_ratio == 1.0


class TestTimeOrderedSplit:
    def _processes(self, n):
        return [
            make_process(["TRYNOP"], machine=f"m-{i}", start=i * 1000.0)
            for i in range(n)
        ]

    def test_split_sizes(self):
        train, test = time_ordered_split(self._processes(10), 0.4)
        assert len(train) == 4 and len(test) == 6

    def test_train_is_strictly_earlier(self):
        train, test = time_ordered_split(self._processes(10), 0.5)
        assert max(p.start_time for p in train) < min(
            p.start_time for p in test
        )

    def test_unsorted_input_is_sorted(self):
        processes = self._processes(6)[::-1]
        train, test = time_ordered_split(processes, 0.5)
        assert max(p.start_time for p in train) < min(
            p.start_time for p in test
        )

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.1])
    def test_invalid_fraction_rejected(self, fraction):
        with pytest.raises(SegmentationError):
            time_ordered_split(self._processes(3), fraction)
