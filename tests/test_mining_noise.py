"""Tests for mining-based noise filtering."""

import pytest

from helpers import make_process
from repro.mining.noise import filter_noise


def build_ensemble(noisy=2):
    processes = []
    for i in range(20):
        processes.append(
            make_process(
                ["TRYNOP"],
                machine=f"a-{i}",
                error_type="error:A",
                extra_symptoms=["warn:A1"],
                start=i * 5_000.0,
            )
        )
        processes.append(
            make_process(
                ["REBOOT"],
                machine=f"b-{i}",
                error_type="error:B",
                start=i * 5_000.0,
            )
        )
    for i in range(noisy):
        processes.append(
            make_process(
                ["RMA"],
                machine=f"x-{i}",
                error_type="error:A",
                extra_symptoms=["error:B"],
                start=i * 5_000.0,
            )
        )
    return processes


class TestFilterNoise:
    def test_partitions_clean_and_noisy(self):
        result = filter_noise(build_ensemble(noisy=2), minp=0.5)
        assert len(result.noisy) == 2
        assert len(result.clean) == 40

    def test_noise_fraction(self):
        result = filter_noise(build_ensemble(noisy=2), minp=0.5)
        assert result.noise_fraction == pytest.approx(2 / 42)

    def test_no_noise(self):
        result = filter_noise(build_ensemble(noisy=0), minp=0.5)
        assert result.noisy == ()
        assert result.noise_fraction == 0.0

    def test_empty_input(self):
        result = filter_noise([], minp=0.5)
        assert result.noise_fraction == 0.0

    def test_clustering_attached(self):
        result = filter_noise(build_ensemble(), minp=0.5)
        assert result.clustering.cluster_count() >= 2

    def test_generated_trace_noise_fraction_near_target(self, small_processes):
        result = filter_noise(small_processes)
        # The small workload injects ~4% overlapping faults.
        assert 0.0 <= result.noise_fraction < 0.12

    def test_noisy_plus_clean_is_input(self):
        ensemble = build_ensemble(noisy=3)
        result = filter_noise(ensemble, minp=0.5)
        assert len(result.noisy) + len(result.clean) == len(ensemble)
