"""Tests for the tabular Q-function."""

import pytest

from repro.errors import ConfigurationError, TrainingError
from repro.learning.qtable import QTable
from repro.mdp.state import RecoveryState

ACTIONS = ["TRYNOP", "REBOOT", "REIMAGE", "RMA"]
S0 = RecoveryState.initial("error:X")
S1 = S0.after("TRYNOP", False)
TERMINAL = S0.after("REBOOT", True)


class TestConstruction:
    def test_empty_actions_rejected(self):
        with pytest.raises(ConfigurationError):
            QTable([])

    def test_duplicate_actions_rejected(self):
        with pytest.raises(ConfigurationError):
            QTable(["A", "A"])

    def test_bad_alpha_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            QTable(ACTIONS, alpha_floor=1.5)


class TestUpdates:
    def test_first_update_sets_target(self):
        table = QTable(ACTIONS)
        table.update(S0, "TRYNOP", 100.0)
        assert table.value(S0, "TRYNOP") == pytest.approx(100.0)

    def test_equation_six_is_running_average(self):
        table = QTable(ACTIONS)
        for target in (100.0, 200.0, 300.0):
            table.update(S0, "TRYNOP", target)
        assert table.value(S0, "TRYNOP") == pytest.approx(200.0)

    def test_visit_counts(self):
        table = QTable(ACTIONS)
        table.update(S0, "TRYNOP", 1.0)
        table.update(S0, "TRYNOP", 1.0)
        table.update(S0, "REBOOT", 1.0)
        assert table.visit_count(S0, "TRYNOP") == 2
        assert table.total_visits(S0) == 3

    def test_alpha_floor_weights_recent_targets(self):
        flat = QTable(ACTIONS, alpha_floor=0.0)
        recency = QTable(ACTIONS, alpha_floor=0.5)
        for table in (flat, recency):
            for target in [1000.0] * 10 + [0.0] * 10:
                table.update(S0, "TRYNOP", target)
        assert recency.value(S0, "TRYNOP") < flat.value(S0, "TRYNOP")

    def test_update_returns_absolute_change(self):
        table = QTable(ACTIONS)
        assert table.update(S0, "TRYNOP", 50.0) == pytest.approx(50.0)
        assert table.update(S0, "TRYNOP", 50.0) == pytest.approx(0.0)

    def test_terminal_update_rejected(self):
        table = QTable(ACTIONS)
        with pytest.raises(TrainingError):
            table.update(TERMINAL, "TRYNOP", 1.0)

    def test_unknown_action_rejected(self):
        table = QTable(ACTIONS)
        with pytest.raises(ConfigurationError):
            table.update(S0, "FSCK", 1.0)


class TestQueries:
    def test_unvisited_value_is_initial(self):
        table = QTable(ACTIONS, initial_value=7.0)
        assert table.value(S0, "RMA") == 7.0

    def test_known_requires_a_visit(self):
        table = QTable(ACTIONS)
        assert not table.known(S0)
        table.update(S0, "TRYNOP", 1.0)
        assert table.known(S0)

    def test_values_for_covers_all_actions(self):
        table = QTable(ACTIONS)
        table.update(S0, "REBOOT", 5.0)
        values = table.values_for(S0)
        assert set(values) == set(ACTIONS)
        assert values["REBOOT"] == 5.0

    def test_min_value_over_all_actions(self):
        table = QTable(ACTIONS)
        table.update(S0, "REBOOT", 5.0)
        assert table.min_value(S0) == 0.0  # unvisited optimistic default

    def test_min_value_terminal_is_zero(self):
        table = QTable(ACTIONS, initial_value=9.0)
        assert table.min_value(TERMINAL) == 0.0

    def test_bootstrap_value_ignores_unvisited(self):
        table = QTable(ACTIONS)
        table.update(S1, "REBOOT", 500.0)
        assert table.bootstrap_value(S1) == pytest.approx(500.0)

    def test_bootstrap_value_unvisited_state_is_initial(self):
        table = QTable(ACTIONS, initial_value=3.0)
        assert table.bootstrap_value(S1) == 3.0

    def test_greedy_action_only_among_visited(self):
        table = QTable(ACTIONS)
        table.update(S0, "REIMAGE", 10.0)
        table.update(S0, "REBOOT", 20.0)
        action, value = table.greedy_action(S0)
        assert action == "REIMAGE"
        assert value == pytest.approx(10.0)

    def test_greedy_action_none_when_unvisited(self):
        assert QTable(ACTIONS).greedy_action(S0) is None

    def test_greedy_tie_breaks_by_catalog_order(self):
        table = QTable(ACTIONS)
        table.update(S0, "REIMAGE", 10.0)
        table.update(S0, "TRYNOP", 10.0)
        assert table.greedy_action(S0)[0] == "TRYNOP"

    def test_ranked_actions_ascending(self):
        table = QTable(ACTIONS)
        table.update(S0, "RMA", 30.0)
        table.update(S0, "TRYNOP", 10.0)
        table.update(S0, "REBOOT", 20.0)
        names = [a for a, _ in table.ranked_actions(S0)]
        assert names == ["TRYNOP", "REBOOT", "RMA"]

    def test_underexplored_action_least_visited_first(self):
        table = QTable(ACTIONS)
        table.update(S0, "TRYNOP", 1.0)
        assert table.underexplored_action(S0, 1) == "REBOOT"
        for action in ACTIONS:
            table.update(S0, action, 1.0)
        assert table.underexplored_action(S0, 1) is None
        # TRYNOP already has 2 visits; REBOOT (1 visit) is least.
        assert table.underexplored_action(S0, 2) == "REBOOT"

    def test_underexplored_disabled_with_zero(self):
        assert QTable(ACTIONS).underexplored_action(S0, 0) is None

    def test_states_iteration(self):
        table = QTable(ACTIONS)
        table.update(S0, "TRYNOP", 1.0)
        table.update(S1, "REBOOT", 1.0)
        assert set(table.states()) == {S0, S1}
        assert len(table) == 2
