"""Differential fuzzing: fleet backend vs the event-driven reference.

The fleet engine's contract is *bit identity* with
:class:`~repro.cluster.cluster.ClusterSimulator` under the machine RNG
discipline — same log entries (exact float times), same per-machine
downtime, same action sequences, same telemetry traces and same RNG
draw counters.  These tests pin that contract the way
``test_backend_equivalence`` pins the dict/array Q-table pair: generate
random cluster scenarios with hypothesis (machine counts, horizons,
fault catalogs, delay regimes, policy families) and compare every
observable of the two backends exactly.

Well over 200 scenarios run across this module's generators (120 in the
main sweep, 40 per policy family, plus a deeper slow-lane sweep).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.actions import default_catalog
from repro.cluster.cluster import ClusterConfig, ClusterSimulator
from repro.cluster.faults import FaultCatalog, FaultType
from repro.cluster.fleet import FleetEngine, simulate_cluster
from repro.errors import ConfigurationError, UnhandledStateError
from repro.mdp.state import RecoveryState
from repro.policies.base import Policy, PolicyDecision
from repro.scenario.model import ScenarioModel
from repro.scenario.presets import ScenarioSpec, build_scenario_model
from repro.policies.hybrid import HybridPolicy
from repro.policies.static import AlwaysStrongestPolicy
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.session.trace import EpisodeTelemetry
from repro.util.rng import RngStreams

CATALOG = default_catalog()
DAY = 86_400.0

# Non-manual action names in strength order (cure probabilities must be
# monotone along this order).
_LADDER = [a.name for a in CATALOG.by_strength() if not a.manual]


class _TraceRecorder(EpisodeTelemetry):
    def __init__(self) -> None:
        self.traces = []

    def on_episode(self, trace) -> None:
        self.traces.append(trace)


# ---------------------------------------------------------------------------
# Scenario strategies
# ---------------------------------------------------------------------------
@st.composite
def fault_catalogs(draw) -> FaultCatalog:
    fault_count = draw(st.integers(1, 4))
    faults = []
    for fid in range(fault_count):
        # Monotone-in-strength cure probabilities via running max over
        # per-rung draws; a rung may be omitted (inherits hypothesis 2).
        cures = {}
        running = 0.0
        for name in _LADDER:
            running = max(
                running, draw(st.floats(0.0, 1.0, allow_nan=False))
            )
            if draw(st.booleans()):
                cures[name] = round(running, 6)
        secondary_count = draw(st.integers(0, 3))
        faults.append(
            FaultType(
                name=f"fault-{fid}",
                primary_symptom=f"error:F{fid}",
                secondary_symptoms=tuple(
                    f"warn:F{fid}s{k}" for k in range(secondary_count)
                ),
                secondary_probability=draw(
                    st.floats(0.0, 1.0, allow_nan=False)
                ),
                cure_probabilities=cures,
                weight=draw(
                    st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False)
                ),
                cost_scale=draw(st.floats(0.2, 3.0, allow_nan=False)),
            )
        )
    return FaultCatalog(faults)


def scenario_trained_chain(draw, scenario: ScenarioModel, max_actions: int):
    """A trained policy whose rule chains cover every *class-decorated*
    error symptom — the per-(class, type) analogue of
    :func:`trained_chain_policy`."""
    action_names = [a.name for a in CATALOG.by_strength()]
    rules = {}
    for class_id in range(scenario.class_count):
        for fault in scenario.base_catalog:
            symptom = scenario.decorate(fault.primary_symptom, class_id)
            tried = ()
            for _step in range(max_actions - 1):
                action = draw(st.sampled_from(action_names))
                cost = draw(st.floats(1.0, 1e5, allow_nan=False))
                rules[RecoveryState(symptom, False, tried)] = (action, cost)
                tried = tried + (action,)
    return TrainedPolicy(rules)


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    """Non-trivial drift / machine-class specs (fleet-compatible: no
    cascade, which the fleet backend rejects by design)."""
    epochs = draw(st.integers(1, 3))
    classes = draw(st.integers(1, 3))
    if epochs == 1 and classes == 1:
        classes = 2  # keep the spec non-trivial
    return ScenarioSpec(
        drift_epochs=epochs,
        drift_strength=draw(st.floats(0.1, 1.5, allow_nan=False)),
        machine_classes=classes,
        class_cost_spread=draw(st.floats(0.0, 0.9, allow_nan=False)),
        class_cure_spread=draw(st.floats(0.0, 0.6, allow_nan=False)),
    )


@st.composite
def scenario_models_for(draw, catalog, duration) -> ScenarioModel:
    return build_scenario_model(
        catalog,
        draw(scenario_specs()),
        duration=duration,
        seed=draw(st.integers(0, 2**16)),
    )


@st.composite
def cluster_configs(draw, **overrides) -> dict:
    params = dict(
        machine_count=draw(st.integers(1, 8)),
        duration=draw(st.floats(5.0, 20.0)) * DAY,
        mean_time_between_failures=draw(st.floats(1.0, 4.0)) * DAY,
        detection_delay_mean=draw(
            st.sampled_from([0.0, 60.0, 300.0, 900.0])
        ),
        decision_delay_mean=draw(
            st.sampled_from([0.0, 60.0, 300.0, 900.0])
        ),
        secondary_symptom_window=draw(st.floats(100.0, 1500.0)),
        symptom_reemission_probability=draw(
            st.floats(0.0, 1.0, allow_nan=False)
        ),
        noise_probability=draw(st.sampled_from([0.0, 0.1, 0.3, 0.5])),
        max_actions=draw(st.integers(2, 6)),
    )
    params.update(overrides)
    return params


def trained_chain_policy(draw, faults: FaultCatalog, max_actions: int):
    """A trained policy with complete rules along its own decision chain.

    A deterministic rule table only ever visits the states its own
    choices produce, so covering the single chain per error type (up to
    the cap's last free slot) makes the policy proper for these runs.
    """
    action_names = [a.name for a in CATALOG.by_strength()]
    rules = {}
    for fault in faults:
        tried = ()
        for _step in range(max_actions - 1):
            action = draw(st.sampled_from(action_names))
            cost = draw(st.floats(1.0, 1e5, allow_nan=False))
            rules[
                RecoveryState(fault.primary_symptom, False, tried)
            ] = (action, cost)
            tried = tried + (action,)
    return TrainedPolicy(rules)


@st.composite
def policies(draw, faults: FaultCatalog, max_actions: int) -> Policy:
    family = draw(
        st.sampled_from(["user", "user-budgets", "strongest", "trained", "hybrid"])
    )
    if family == "user":
        return UserDefinedPolicy(CATALOG)
    if family == "user-budgets":
        budgets = {
            name: draw(st.integers(0, 3))
            for name in _LADDER
            if draw(st.booleans())
        }
        return UserDefinedPolicy(CATALOG, retry_budgets=budgets)
    if family == "strongest":
        return AlwaysStrongestPolicy(CATALOG)
    if family == "trained":
        return trained_chain_policy(draw, faults, max_actions)
    # Hybrid: the trained member keeps only a truncated rule chain, so
    # deeper states revert to the user-defined fallback mid-episode.
    full = trained_chain_policy(draw, faults, max_actions)
    keep = draw(st.integers(0, max_actions - 1))
    truncated = {
        state: rule
        for state, rule in full.rules.items()
        if state.attempt_count < keep
    }
    return HybridPolicy(TrainedPolicy(truncated), UserDefinedPolicy(CATALOG))


# ---------------------------------------------------------------------------
# The differential core
# ---------------------------------------------------------------------------
def run_both(params, faults, policy_builder, seed):
    """Run event (machine discipline) and fleet on one scenario."""
    event_cfg = ClusterConfig(rng_discipline="machine", **params)
    fleet_cfg = ClusterConfig(backend="fleet", **params)
    event_rec, fleet_rec = _TraceRecorder(), _TraceRecorder()
    simulator = ClusterSimulator(
        event_cfg,
        faults,
        policy_builder(),
        CATALOG,
        RngStreams(seed),
        episode_telemetry=event_rec,
    )
    event_log = simulator.run()
    engine = FleetEngine(
        fleet_cfg,
        faults,
        policy_builder(),
        CATALOG,
        RngStreams(seed),
        episode_telemetry=fleet_rec,
    )
    result = engine.run()
    return simulator, event_log, event_rec, result, fleet_rec


def assert_equivalent(simulator, event_log, event_rec, result, fleet_rec):
    fleet_log = result.to_log()
    # Bit-exact log identity: same entries, same float times, same order.
    assert fleet_log == event_log
    # Same RNG consumption per (machine, channel).
    assert np.array_equal(
        simulator.random_source.draw_counts(), result.draw_counts
    )
    # Same per-machine lifetime counters.
    names = [
        simulator.config.machine_name_format.format(i)
        for i in range(simulator.config.machine_count)
    ]
    assert np.array_equal(
        result.failure_counts,
        np.array([simulator.machines[n].failure_count for n in names]),
    )
    assert np.array_equal(
        result.recovery_counts,
        np.array([simulator.machines[n].recovery_count for n in names]),
    )
    # Same per-machine downtime and per-process action sequences, via
    # the flat-array accessors (not just via to_log).
    processes = event_log.to_processes()
    downtime = dict.fromkeys(names, 0.0)
    for process in processes:
        downtime[process.machine] += (
            process.entries[-1].time - process.entries[0].time
        )
    fleet_downtime = result.downtime_per_machine()
    for i, name in enumerate(names):
        assert fleet_downtime[i] == downtime[name]
    expected_sequences = sorted(
        (p.machine, p.entries[0].time, tuple(e.description for e in p.entries if e.is_action))
        for p in processes
    )
    fleet_sequences = sorted(
        zip(
            (names[m] for m in result.proc_machines),
            result.proc_fault_times,
            result.process_actions(),
        )
    )
    assert fleet_sequences == expected_sequences
    # Same telemetry traces, in the same order.
    assert fleet_rec.traces == event_rec.traces


# ---------------------------------------------------------------------------
# Fuzz sweeps
# ---------------------------------------------------------------------------
class TestFuzzEquivalence:
    @given(data=st.data())
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_scenarios(self, data):
        """Main sweep: random configs, catalogs, policies and seeds."""
        params = data.draw(cluster_configs())
        faults = data.draw(fault_catalogs())
        policy_spec = data.draw(policies(faults, params["max_actions"]))
        seed = data.draw(st.integers(0, 2**32 - 1))
        # Build fresh, independent policy instances per backend (hybrid
        # policies carry fallback counters; sharing one would couple the
        # runs).
        outputs = run_both(
            params, faults, lambda: copy.deepcopy(policy_spec), seed
        )
        assert_equivalent(*outputs)

    @given(data=st.data())
    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_drift_and_class_scenarios(self, data):
        """Scenario-model sweep: drifting epochs and heterogeneous
        machine classes must stay bit-identical across backends."""
        params = data.draw(cluster_configs())
        catalog = data.draw(fault_catalogs())
        scenario = data.draw(
            scenario_models_for(catalog, params["duration"])
        )
        family = data.draw(
            st.sampled_from(["user", "strongest", "trained", "hybrid"])
        )
        if family == "user":
            policy_spec = UserDefinedPolicy(CATALOG)
        elif family == "strongest":
            policy_spec = AlwaysStrongestPolicy(CATALOG)
        else:
            trained = scenario_trained_chain(
                data.draw, scenario, params["max_actions"]
            )
            policy_spec = (
                trained
                if family == "trained"
                else HybridPolicy(trained, UserDefinedPolicy(CATALOG))
            )
        seed = data.draw(st.integers(0, 2**32 - 1))
        outputs = run_both(
            params, scenario, lambda: copy.deepcopy(policy_spec), seed
        )
        assert_equivalent(*outputs)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_trained_policy_scenarios(self, data):
        """Trained rule tables exercise forced-cap and batch decide paths."""
        params = data.draw(cluster_configs(noise_probability=0.3))
        faults = data.draw(fault_catalogs())
        policy = trained_chain_policy(data.draw, faults, params["max_actions"])
        seed = data.draw(st.integers(0, 2**16))
        outputs = run_both(params, faults, lambda: policy, seed)
        assert_equivalent(*outputs)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_zero_delay_scenarios(self, data):
        """Zero delays collapse symptom/action/success onto shared
        timestamps — the regime that exercises the log's causal
        tie-break ordering."""
        params = data.draw(
            cluster_configs(
                detection_delay_mean=0.0, decision_delay_mean=0.0
            )
        )
        faults = data.draw(fault_catalogs())
        seed = data.draw(st.integers(0, 2**16))
        outputs = run_both(
            params, faults, lambda: UserDefinedPolicy(CATALOG), seed
        )
        assert_equivalent(*outputs)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    @pytest.mark.slow
    def test_deep_scenarios(self, data):
        """Slow lane: larger fleets and longer horizons."""
        params = data.draw(cluster_configs())
        params["machine_count"] = data.draw(st.integers(20, 60))
        params["duration"] = data.draw(st.floats(20.0, 60.0)) * DAY
        faults = data.draw(fault_catalogs())
        policy_spec = data.draw(policies(faults, params["max_actions"]))
        seed = data.draw(st.integers(0, 2**32 - 1))
        outputs = run_both(
            params, faults, lambda: copy.deepcopy(policy_spec), seed
        )
        assert_equivalent(*outputs)


# ---------------------------------------------------------------------------
# Directed edges
# ---------------------------------------------------------------------------
def simple_faults():
    return FaultCatalog(
        [
            FaultType(
                name="transient",
                primary_symptom="error:Transient",
                cure_probabilities={"TRYNOP": 0.7, "REBOOT": 0.95},
                weight=3.0,
            ),
            FaultType(
                name="hard",
                primary_symptom="error:Hard",
                secondary_symptoms=("warn:Side",),
                cure_probabilities={"REIMAGE": 0.95},
                weight=1.0,
            ),
        ]
    )


def small_params(**overrides):
    params = dict(
        machine_count=10,
        duration=30 * DAY,
        mean_time_between_failures=3 * DAY,
        noise_probability=0.3,
    )
    params.update(overrides)
    return params


class TestDirectedEquivalence:
    def test_single_machine_fleet(self):
        outputs = run_both(
            small_params(machine_count=1),
            simple_faults(),
            lambda: UserDefinedPolicy(CATALOG),
            seed=11,
        )
        assert_equivalent(*outputs)

    def test_single_fault_catalog_skips_noise_coin(self):
        faults = FaultCatalog(
            [
                FaultType(
                    name="only",
                    primary_symptom="error:Only",
                    cure_probabilities={"REBOOT": 0.8},
                )
            ]
        )
        outputs = run_both(
            small_params(noise_probability=0.5),
            faults,
            lambda: UserDefinedPolicy(CATALOG),
            seed=21,
        )
        assert_equivalent(*outputs)

    def test_tight_action_cap(self):
        outputs = run_both(
            small_params(max_actions=2),
            simple_faults(),
            lambda: UserDefinedPolicy(CATALOG),
            seed=31,
        )
        assert_equivalent(*outputs)

    def test_always_reemitting_symptoms(self):
        outputs = run_both(
            small_params(symptom_reemission_probability=1.0),
            simple_faults(),
            lambda: AlwaysStrongestPolicy(CATALOG),
            seed=41,
        )
        assert_equivalent(*outputs)

    def test_both_backends_raise_on_unhandled_state(self):
        """An improper policy aborts both backends with the same error
        type — the online path must never swallow it."""
        empty = TrainedPolicy({})
        params = small_params(noise_probability=0.0)
        with pytest.raises(UnhandledStateError):
            ClusterSimulator(
                ClusterConfig(rng_discipline="machine", **params),
                simple_faults(),
                empty,
                CATALOG,
                RngStreams(5),
            ).run()
        with pytest.raises(UnhandledStateError):
            FleetEngine(
                ClusterConfig(backend="fleet", **params),
                simple_faults(),
                empty,
                CATALOG,
                RngStreams(5),
            ).run()


class TestBackendSelection:
    def test_fleet_rejects_stream_discipline(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(backend="fleet", rng_discipline="stream")

    def test_fleet_engine_rejects_stream_config(self):
        config = ClusterConfig(
            **small_params(), rng_discipline="stream"
        )
        with pytest.raises(ConfigurationError):
            FleetEngine(
                config, simple_faults(), UserDefinedPolicy(CATALOG), CATALOG
            )

    def test_factory_dispatches_identically(self):
        params = small_params()
        via_event = simulate_cluster(
            ClusterConfig(rng_discipline="machine", **params),
            simple_faults(),
            UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(17),
        )
        via_fleet = simulate_cluster(
            ClusterConfig(backend="fleet", **params),
            simple_faults(),
            UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(17),
        )
        assert via_event == via_fleet

    def test_factory_falls_back_for_batch_unsafe_policy(self):
        """batch_safe=False policies run sequentially, under the machine
        discipline, and produce the trace the fleet defines."""

        class StatefulPolicy(UserDefinedPolicy):
            batch_safe = False

        params = small_params(noise_probability=0.0)
        log = simulate_cluster(
            ClusterConfig(backend="fleet", **params),
            simple_faults(),
            StatefulPolicy(CATALOG),
            CATALOG,
            RngStreams(23),
        )
        reference = simulate_cluster(
            ClusterConfig(rng_discipline="machine", **params),
            simple_faults(),
            UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(23),
        )
        assert log == reference

    def test_fleet_engine_rejects_batch_unsafe_policy(self):
        class StatefulPolicy(UserDefinedPolicy):
            batch_safe = False

        with pytest.raises(ConfigurationError):
            FleetEngine(
                ClusterConfig(backend="fleet", **small_params()),
                simple_faults(),
                StatefulPolicy(CATALOG),
                CATALOG,
            )


class TestFullScale:
    @pytest.mark.slow
    def test_hundred_thousand_machine_fleet(self):
        """The fleet engine holds 10^5 machines (the committed
        BENCH_fleet_scale.json scale) and its aggregates stay
        self-consistent at that size."""
        machines = 100_000
        config = ClusterConfig(
            backend="fleet",
            machine_count=machines,
            duration=20 * DAY,
            mean_time_between_failures=7.5 * DAY,
            noise_probability=0.042,
        )
        engine = FleetEngine(
            config,
            simple_faults(),
            UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(11),
        )
        result = engine.run()
        assert result.process_count > machines  # ~2.7 recoveries/machine
        assert np.array_equal(result.recovery_counts, result.failure_counts)
        assert result.process_count == int(result.failure_counts.sum())
        # Every process closes after its fault with positive downtime.
        assert np.all(result.proc_success_times > result.proc_fault_times)
        downtime = result.downtime_per_machine()
        assert downtime.shape == (machines,)
        assert np.all(downtime >= 0.0)
        # Draw counters: every machine consumed at least its initial
        # arrival draw, on the arrivals channel.
        from repro.cluster.randomness import ARRIVALS

        assert result.draw_counts.shape == (machines, 5)
        assert np.all(result.draw_counts[:, ARRIVALS] >= 1)
