"""Tests for the empirical belief MDP and model-based policy."""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.errors import EvaluationError, UnhandledStateError
from repro.mdp.empirical import EmpiricalMDPPolicy, EmpiricalRecoveryMDP
from repro.mdp.state import RecoveryState

CATALOG = default_catalog()


def hard_processes():
    return ladder_processes(
        "error:Hard",
        [
            (["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 30),
            (["TRYNOP", "REBOOT"], 3),
        ],
        realistic_durations=True,
    )


def soft_processes():
    return ladder_processes(
        "error:Soft",
        [(["TRYNOP"], 20), (["TRYNOP", "REBOOT"], 10)],
        realistic_durations=True,
    )


class TestEstimation:
    def test_initial_success_probabilities_match_data(self):
        model = EmpiricalRecoveryMDP.estimate(
            "error:Soft", soft_processes(), CATALOG
        )
        outcomes = model.mdp.outcomes((), "TRYNOP")
        success = [o for o in outcomes if o.next_state == "<healthy>"]
        assert success[0].probability == pytest.approx(20 / 30)

    def test_reboot_covers_everything_in_soft_type(self):
        model = EmpiricalRecoveryMDP.estimate(
            "error:Soft", soft_processes(), CATALOG
        )
        outcomes = model.mdp.outcomes((), "REBOOT")
        assert len(outcomes) == 1
        assert outcomes[0].next_state == "<healthy>"

    def test_states_are_canonical_multisets(self):
        model = EmpiricalRecoveryMDP.estimate(
            "error:Hard", hard_processes(), CATALOG
        )
        for state in model.mdp.states:
            assert list(state) == sorted(state)

    def test_empty_processes_rejected(self):
        with pytest.raises(EvaluationError):
            EmpiricalRecoveryMDP.estimate("error:X", [], CATALOG)

    def test_solve_finds_reimage_jump(self):
        model = EmpiricalRecoveryMDP.estimate(
            "error:Hard", hard_processes(), CATALOG
        )
        policy, value = model.solve()
        assert policy[()] == "REIMAGE"
        assert value > 0

    def test_solve_watches_first_for_soft_type(self):
        model = EmpiricalRecoveryMDP.estimate(
            "error:Soft", soft_processes(), CATALOG
        )
        policy, _value = model.solve()
        assert policy[()] == "TRYNOP"


class TestEmpiricalMDPPolicy:
    @pytest.fixture
    def policy(self):
        return EmpiricalMDPPolicy.fit(
            {
                "error:Hard": hard_processes(),
                "error:Soft": soft_processes(),
            },
            CATALOG,
        )

    def test_decides_per_type(self, policy):
        assert policy.decide(
            RecoveryState.initial("error:Hard")
        ).action == "REIMAGE"
        assert policy.decide(
            RecoveryState.initial("error:Soft")
        ).action == "TRYNOP"

    def test_canonicalizes_history_order(self, policy):
        a = RecoveryState("error:Hard", tried=("TRYNOP", "REBOOT"))
        b = RecoveryState("error:Hard", tried=("REBOOT", "TRYNOP"))
        assert policy.decide(a).action == policy.decide(b).action

    def test_unknown_type_unhandled(self, policy):
        with pytest.raises(UnhandledStateError):
            policy.decide(RecoveryState.initial("error:Ghost"))

    def test_beats_user_ladder_on_hard_type(self, policy):
        from repro.evaluation.evaluator import PolicyEvaluator

        processes = hard_processes()
        evaluator = PolicyEvaluator(processes, CATALOG)
        result = evaluator.evaluate(policy)
        assert result.overall_relative_cost < 0.8
