"""The tier-1 gate: the shipped tree must satisfy its own contract.

This is the machine checker the PR 1 id-reuse incident argued for: it
lints every module under ``src/repro`` against rules R1-R6 and fails on
any finding the committed baseline does not grandfather.  The companion
tests drive the same gate through the ``repro lint`` CLI, including the
pre-fix fixture copies that reproduce the exact violations this PR
fixed.
"""

import json
from pathlib import Path

import repro
from repro.analysis import (
    Baseline,
    collect_suppressions,
    render_text,
    run_lint,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_DIR = Path(repro.__file__).resolve().parent
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


class TestGate:
    def test_package_tree_is_lint_clean(self):
        baseline = Baseline.load(BASELINE_PATH)
        report = run_lint(
            [PACKAGE_DIR], baseline=baseline, root=REPO_ROOT
        )
        assert report.clean, "\n" + render_text(report)

    def test_committed_baseline_is_empty(self):
        # The initial baseline grandfathers nothing: every finding in
        # the tree was fixed or suppressed with a reason in this PR.
        assert len(Baseline.load(BASELINE_PATH)) == 0

    def test_every_suppression_states_a_reason(self):
        missing = []
        for path in sorted(PACKAGE_DIR.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            for suppression in collect_suppressions(source).values():
                if not suppression.reason:
                    missing.append(f"{path}:{suppression.line}")
        assert not missing, (
            "suppressions without a written reason: " + ", ".join(missing)
        )


class TestLintCli:
    def test_prefix_copies_fail_lint(self, capsys):
        code = main(
            [
                "lint",
                str(FIXTURES / "prefix_bundle.py"),
                str(FIXTURES / "prefix_figures.py"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "R1" in out
        assert "prefix_bundle.py" in out
        assert "prefix_figures.py" in out

    def test_package_default_paths_pass(self, capsys):
        # Without positional paths the CLI lints the installed package.
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_gate_command_matches_ci_invocation(self, capsys):
        code = main(
            [
                "lint",
                str(PACKAGE_DIR),
                "--baseline",
                str(BASELINE_PATH),
            ]
        )
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "r2_bad.py"), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload["findings"]} == {"R2"}

    def test_rules_filter(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "r2_bad.py"), "--rules", "R1,R6"]
        )
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_unknown_rule_is_an_error(self, capsys):
        assert main(["lint", str(FIXTURES), "--rules", "R99"]) == 1
        assert "unknown rule" in capsys.readouterr().err

    def test_update_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        target = str(FIXTURES / "r5_bad.py")
        assert main(["lint", target]) == 1
        assert (
            main(
                ["lint", target, "--baseline", str(baseline),
                 "--update-baseline"]
            )
            == 0
        )
        assert baseline.exists()
        capsys.readouterr()
        assert (
            main(["lint", target, "--baseline", str(baseline)]) == 0
        )
        assert "baselined" in capsys.readouterr().out

    def test_update_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", str(FIXTURES), "--update-baseline"]) == 1
        assert "--baseline" in capsys.readouterr().err

    def test_missing_baseline_file_is_an_error(self, tmp_path, capsys):
        code = main(
            [
                "lint",
                str(FIXTURES / "r1_good.py"),
                "--baseline",
                str(tmp_path / "absent.json"),
            ]
        )
        assert code == 1
        assert "not found" in capsys.readouterr().err


class TestFleetModuleGate:
    """The vectorized fleet engine must satisfy R1 and R4 on its own,
    with no suppressions: flat-array code lives or dies by value-keyed
    state and deterministic iteration order."""

    FLEET = PACKAGE_DIR / "cluster" / "fleet.py"

    def test_fleet_clean_under_r1_and_r4(self):
        report = run_lint([self.FLEET], root=REPO_ROOT, rules=["R1", "R4"])
        assert report.clean, "\n" + render_text(report)

    def test_fleet_clean_under_all_rules(self):
        report = run_lint([self.FLEET], root=REPO_ROOT)
        assert report.clean, "\n" + render_text(report)

    def test_fleet_has_zero_suppressions(self):
        source = self.FLEET.read_text(encoding="utf-8")
        assert collect_suppressions(source) == {}
