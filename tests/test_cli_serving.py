"""Tests for the serving-side CLI: export-policy, serve, lint budget."""

import json

import pytest

from repro.cli import build_parser, main
from repro.mdp.state import RecoveryState
from repro.policies.serialization import save_policy
from repro.policies.trained import TrainedPolicy

S0 = RecoveryState.initial("error:X")
S1 = S0.after("REIMAGE", False)


@pytest.fixture
def policy_path(tmp_path):
    policy = TrainedPolicy(
        {S0: ("REIMAGE", 7200.0), S1: ("RMA", 172800.0)}, label="cli"
    )
    path = tmp_path / "policy.json"
    save_policy(policy, path)
    return str(path)


class TestExportPolicy:
    def test_exports_binary(self, policy_path, tmp_path, capsys):
        out = tmp_path / "policy.rpb"
        code = main(
            ["export-policy", "--policy", policy_path, "--out", str(out)]
        )
        assert code == 0
        assert out.read_bytes()[:8] == b"RPROPOLB"
        assert "exported 2 rules" in capsys.readouterr().out

    def test_verify_flag_checks_round_trip(self, policy_path, tmp_path, capsys):
        out = tmp_path / "policy.rpb"
        code = main(
            [
                "export-policy",
                "--policy", policy_path,
                "--out", str(out),
                "--verify",
            ]
        )
        assert code == 0
        assert "decide identically" in capsys.readouterr().out


class TestServe:
    def test_queries_mode_answers_jsonl(self, policy_path, tmp_path, capsys):
        binary = tmp_path / "policy.rpb"
        main(["export-policy", "--policy", policy_path, "--out", str(binary)])
        capsys.readouterr()
        queries = tmp_path / "queries.jsonl"
        queries.write_text(
            "\n".join(
                [
                    json.dumps({"error_type": "error:X", "tried": []}),
                    json.dumps(
                        {"error_type": "error:X", "tried": ["REIMAGE"]}
                    ),
                    json.dumps({"error_type": "error:unknown", "tried": []}),
                ]
            )
            + "\n"
        )
        answers = tmp_path / "answers.jsonl"
        code = main(
            [
                "serve",
                "--policy", str(binary),
                "--queries", str(queries),
                "--out", str(answers),
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in answers.read_text().splitlines()
            if line.strip()
        ]
        assert [r["action"] for r in records] == ["REIMAGE", "RMA", "TRYNOP"]
        assert [r["fell_back"] for r in records] == [False, False, True]
        assert "serving 2 rules" in capsys.readouterr().err

    def test_serve_accepts_json_policy_directly(
        self, policy_path, tmp_path, capsys
    ):
        queries = tmp_path / "queries.jsonl"
        queries.write_text(
            json.dumps({"error_type": "error:X", "tried": []}) + "\n"
        )
        answers = tmp_path / "answers.jsonl"
        code = main(
            [
                "serve",
                "--policy", policy_path,
                "--queries", str(queries),
                "--out", str(answers),
            ]
        )
        assert code == 0
        record = json.loads(answers.read_text().splitlines()[0])
        assert record["action"] == "REIMAGE"

    def test_storm_mode_prints_report(self, policy_path, tmp_path, capsys):
        binary = tmp_path / "policy.rpb"
        main(["export-policy", "--policy", policy_path, "--out", str(binary)])
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--policy", str(binary),
                "--storm", "2000",
                "--batch-size", "256",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decisions served" in out
        assert "2,000" in out
        assert "fallback rate" in out

    def test_fleet_mode_prints_summary(self, policy_path, capsys):
        code = main(
            [
                "serve",
                "--policy", policy_path,
                "--fleet-machines", "200",
                "--fleet-days", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet storm" in out
        assert "decisions by policy generation" in out

    def test_requires_exactly_one_mode(self, policy_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", policy_path])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "serve",
                    "--policy", policy_path,
                    "--storm", "10",
                    "--fleet-machines", "5",
                ]
            )


class TestLintBudget:
    def test_within_budget_behaves_normally(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        code = main(
            ["lint", str(clean), "--budget-seconds", "60"]
        )
        assert code == 0

    def test_overrun_fails_and_prints_stage_timings(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        code = main(
            ["lint", str(clean), "--budget-seconds", "0.000000001"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "lint stats:" in err
        assert "budget" in err
        assert "after stage" in err
