"""Tests for the micro-batching serving frontend."""

import threading

import pytest

from repro.actions import default_catalog
from repro.errors import ConfigurationError
from repro.mdp.state import RecoveryState
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.serving import DecisionServer, ServingFrontend

S0 = RecoveryState.initial("error:X")
S1 = S0.after("REIMAGE", False)
UNKNOWN = RecoveryState.initial("error:never-seen")


@pytest.fixture
def server():
    trained = TrainedPolicy(
        {S0: ("REIMAGE", 7200.0), S1: ("RMA", 172800.0)}, label="t1"
    )
    return DecisionServer(trained, UserDefinedPolicy(default_catalog()))


class TestFrontend:
    def test_single_decide(self, server):
        with ServingFrontend(server) as frontend:
            decision = frontend.decide(S0)
        assert decision.action == "REIMAGE"
        assert not decision.fell_back

    def test_decide_many_preserves_order(self, server):
        states = [S0, UNKNOWN, S1, S0] * 10
        with ServingFrontend(server) as frontend:
            decisions = frontend.decide_many(states)
        assert len(decisions) == len(states)
        assert [d.action for d in decisions[:4]] == [
            "REIMAGE",
            "TRYNOP",
            "RMA",
            "REIMAGE",
        ]

    def test_submit_returns_future(self, server):
        with ServingFrontend(server) as frontend:
            future = frontend.submit(UNKNOWN)
            decision = future.result(timeout=5)
        assert decision.fell_back

    def test_concurrent_submitters_all_answered(self, server):
        results = []
        lock = threading.Lock()

        def client(frontend, state, repeats):
            for _ in range(repeats):
                decision = frontend.decide(state)
                with lock:
                    results.append(decision.action)

        with ServingFrontend(server, max_batch=8) as frontend:
            threads = [
                threading.Thread(
                    target=client, args=(frontend, state, 25)
                )
                for state in (S0, S1, UNKNOWN)
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(results) == 150
        assert set(results) == {"REIMAGE", "RMA", "TRYNOP"}

    def test_batches_form_under_load(self, server):
        with ServingFrontend(server, max_batch=64) as frontend:
            futures = [frontend.submit(S0) for _ in range(256)]
            for future in futures:
                future.result(timeout=5)
            assert frontend.batch_count >= 1
            assert frontend.mean_batch_size >= 1.0

    def test_submit_after_close_rejected(self, server):
        frontend = ServingFrontend(server)
        frontend.close()
        with pytest.raises(ConfigurationError, match="closed"):
            frontend.submit(S0)

    def test_close_drains_pending_work(self, server):
        frontend = ServingFrontend(server, max_batch=4)
        futures = [frontend.submit(S0) for _ in range(100)]
        frontend.close()
        for future in futures:
            assert future.result(timeout=5).action == "REIMAGE"

    def test_close_idempotent(self, server):
        frontend = ServingFrontend(server)
        frontend.close()
        frontend.close()

    def test_bad_state_propagates_exception(self, server):
        terminal = S0.after("REIMAGE", True)
        with ServingFrontend(server) as frontend:
            future = frontend.submit(terminal)
            with pytest.raises(ConfigurationError, match="terminal"):
                future.result(timeout=5)
            # The dispatcher survives a poisoned batch.
            assert frontend.decide(S0).action == "REIMAGE"

    def test_max_batch_validated(self, server):
        with pytest.raises(ConfigurationError, match="max_batch"):
            ServingFrontend(server, max_batch=0)
