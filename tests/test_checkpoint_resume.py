"""Checkpoint/resume: an interrupted run must finish bit-identically.

Scenario under test: a long multi-type training run dies after ``k``
types (simulated by training only a prefix of the groups against a
checkpoint store); a second run over the full set with ``resume=True``
must restore the finished types from disk, train only the remainder,
and end with Q tables, rules and metadata identical to an uninterrupted
run — exercising JSON round-trip exactness, fingerprint invalidation
and torn-file tolerance along the way.
"""

import json

import pytest

from repro.actions import default_catalog
from repro.core import PipelineConfig, RecoveryPolicyLearner
from repro.errors import ConfigurationError, TrainingError
from repro.learning.checkpoint import (
    CheckpointStore,
    TypeCheckpoint,
    training_fingerprint,
)
from repro.learning.parallel import ParallelTrainingEngine
from repro.learning.qlearning import QLearningConfig
from repro.learning.selection_tree import SelectionTreeConfig
from test_learning_parallel import (
    ladder_groups,
    outcome_snapshot,
    qtable_snapshot,
)

CATALOG = default_catalog()
QL = QLearningConfig(max_sweeps=40, episodes_per_sweep=8, seed=3)
TREE = SelectionTreeConfig(min_sweeps=10, check_interval=5)


def engine_for(groups, store, *, resume=True, n_workers=1):
    ensemble = [p for ps in groups.values() for p in ps]
    return ParallelTrainingEngine(
        ensemble,
        CATALOG,
        qlearning=QL,
        tree=TREE,
        n_workers=n_workers,
        checkpoint=store,
        resume=resume,
    )


def store_at(tmp_path, fingerprint="fp-test"):
    return CheckpointStore(
        tmp_path / "ckpt",
        fingerprint=fingerprint,
        alpha_floor=QL.alpha_floor,
    )


class TestCheckpointStore:
    def test_round_trip_is_exact(self, tmp_path):
        groups = ladder_groups()
        store = store_at(tmp_path)
        outcomes = engine_for(groups, store).train(groups)
        for error_type, outcome in outcomes.items():
            loaded = store.load(error_type)
            assert loaded is not None
            assert loaded.error_type == error_type
            # Q values and visit counts survive JSON bit-for-bit.
            assert qtable_snapshot(loaded.training.qtable) == qtable_snapshot(
                outcome.training.qtable
            )
            assert loaded.rules == outcome.rules
            assert loaded.training.sweeps_run == outcome.training.sweeps_run
            assert loaded.training.episodes == outcome.training.episodes
            assert loaded.training.converged == outcome.training.converged
            assert loaded.expected_cost == outcome.expected_cost

    def test_completed_types_lists_saved_types(self, tmp_path):
        groups = ladder_groups()
        store = store_at(tmp_path)
        assert store.completed_types() == ()
        engine_for(groups, store).train(groups)
        assert store.completed_types() == tuple(sorted(groups))

    def test_missing_checkpoint_loads_none(self, tmp_path):
        assert store_at(tmp_path).load("error:Nope") is None

    def test_fingerprint_mismatch_invalidates(self, tmp_path):
        groups = ladder_groups()
        engine_for(groups, store_at(tmp_path, "fp-a")).train(groups)
        stale = store_at(tmp_path, "fp-b")
        assert stale.load("error:Hard") is None
        assert stale.completed_types() == ()

    def test_torn_checkpoint_retrains_instead_of_crashing(self, tmp_path):
        groups = ladder_groups()
        store = store_at(tmp_path)
        engine_for(groups, store).train(groups)
        path = store.path_for("error:Hard")
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        assert store.load("error:Hard") is None

    def test_tampered_error_type_raises(self, tmp_path):
        groups = ladder_groups()
        store = store_at(tmp_path)
        engine_for(groups, store).train(groups)
        path = store.path_for("error:Hard")
        payload = json.loads(path.read_text())
        payload["error_type"] = "error:Other"
        path.write_text(json.dumps(payload))
        with pytest.raises(TrainingError, match="belongs to"):
            store.load("error:Hard")

    def test_fingerprint_is_order_insensitive(self):
        assert training_fingerprint({"a": 1, "b": 2}) == training_fingerprint(
            {"b": 2, "a": 1}
        )
        assert training_fingerprint({"a": 1}) != training_fingerprint(
            {"a": 2}
        )

    def test_save_returns_existing_path(self, tmp_path):
        groups = ladder_groups()
        store = store_at(tmp_path)
        outcomes = engine_for(groups, store).train(groups)
        outcome = outcomes["error:Hard"]
        path = store.save(
            TypeCheckpoint(
                error_type="error:Hard",
                training=outcome.training,
                rules=outcome.rules,
                expected_cost=outcome.expected_cost,
                candidates_evaluated=outcome.candidates_evaluated,
                wall_clock=outcome.wall_clock,
            )
        )
        assert path == store.path_for("error:Hard")
        assert path.exists()


class TestInterruptAndResume:
    def test_resume_after_interrupt_matches_uninterrupted(self, tmp_path):
        groups = ladder_groups()
        uninterrupted = engine_for(groups, None).train(groups)

        # "Interrupt" after k=2 types: only a prefix reaches the store.
        store = store_at(tmp_path)
        prefix = dict(list(groups.items())[:2])
        engine_for(prefix, store).train(prefix)
        assert store.completed_types() == tuple(sorted(prefix))

        # The restarted run restores the prefix and trains the rest.
        resumed = engine_for(groups, store).train(groups)
        assert outcome_snapshot(resumed) == outcome_snapshot(uninterrupted)
        for error_type, outcome in resumed.items():
            assert outcome.from_checkpoint == (error_type in prefix)

    def test_second_resume_restores_everything(self, tmp_path):
        groups = ladder_groups()
        store = store_at(tmp_path)
        first = engine_for(groups, store).train(groups)
        second = engine_for(groups, store).train(groups)
        assert outcome_snapshot(first) == outcome_snapshot(second)
        assert all(o.from_checkpoint for o in second.values())
        assert not any(o.from_checkpoint for o in first.values())

    def test_resume_false_retrains_and_overwrites(self, tmp_path):
        groups = ladder_groups()
        store = store_at(tmp_path)
        engine_for(groups, store).train(groups)
        fresh = engine_for(groups, store, resume=False).train(groups)
        assert not any(o.from_checkpoint for o in fresh.values())

    @pytest.mark.slow
    def test_parallel_resume_matches_serial_uninterrupted(self, tmp_path):
        groups = ladder_groups()
        uninterrupted = engine_for(groups, None).train(groups)
        store = store_at(tmp_path)
        prefix = dict(list(groups.items())[:1])
        engine_for(prefix, store).train(prefix)
        resumed = engine_for(groups, store, n_workers=2).train(groups)
        assert outcome_snapshot(resumed) == outcome_snapshot(uninterrupted)

    def test_failure_keeps_earlier_checkpoints(self, tmp_path):
        """Types finished before a failure stay resumable."""
        groups = ladder_groups()
        store = store_at(tmp_path)
        broken = dict(groups)
        # Last type poisoned: its course fails after the others saved.
        broken["error:Mid"] = [broken["error:Hard"][0]]
        with pytest.raises(TrainingError, match="error:Mid"):
            engine_for(broken, store).train(broken)
        saved = store.completed_types()
        assert "error:Hard" in saved and "error:Soft" in saved
        assert "error:Mid" not in saved


class TestPipelineCheckpointing:
    def test_fit_twice_with_resume_is_identical(
        self, tmp_path, small_processes
    ):
        def fit(resume):
            config = PipelineConfig(
                top_k_types=3,
                qlearning=QLearningConfig(max_sweeps=40, episodes_per_sweep=8),
                tree=SelectionTreeConfig(min_sweeps=10, check_interval=10),
                checkpoint_dir=str(tmp_path / "ckpt"),
                resume=resume,
            )
            return RecoveryPolicyLearner(config=config).fit(small_processes)

        first = fit(False)
        second = fit(True)
        assert second.rules_ == first.rules_
        assert second.trained_policy().rules == first.trained_policy().rules
        assert all(o.from_checkpoint for o in second.outcomes_.values())
        assert not any(o.from_checkpoint for o in first.outcomes_.values())

    def test_changed_hyperparameters_invalidate_checkpoints(
        self, tmp_path, small_processes
    ):
        def fit(max_sweeps):
            config = PipelineConfig(
                top_k_types=2,
                qlearning=QLearningConfig(
                    max_sweeps=max_sweeps, episodes_per_sweep=8
                ),
                tree=SelectionTreeConfig(min_sweeps=10, check_interval=10),
                checkpoint_dir=str(tmp_path / "ckpt"),
                resume=True,
            )
            return RecoveryPolicyLearner(config=config).fit(small_processes)

        fit(40)
        # Different sweep cap -> different fingerprint -> full retrain.
        refit = fit(30)
        assert not any(o.from_checkpoint for o in refit.outcomes_.values())

    def test_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            PipelineConfig(resume=True)
