"""Tests for the Figure 7 platform validation."""

import pytest

from repro.actions import default_catalog
from repro.errors import ConfigurationError
from repro.errortypes.registry import ErrorTypeRegistry
from repro.mining.noise import filter_noise
from repro.policies import UserDefinedPolicy
from repro.simplatform.validation import validate_platform

CATALOG = default_catalog()


@pytest.fixture(scope="module")
def report_and_registry(small_trace):
    clean = filter_noise(small_trace.log.to_processes()).clean
    registry = ErrorTypeRegistry.from_processes(clean).top(10)
    report = validate_platform(
        clean,
        UserDefinedPolicy(CATALOG),
        CATALOG,
        error_types=registry.names,
    )
    return report, registry


class TestValidatePlatform:
    def test_all_requested_types_reported(self, report_and_registry):
        report, registry = report_and_registry
        assert set(report.relative_cost) == set(registry.names)

    def test_ratios_reasonably_close_to_one(self, report_and_registry):
        report, _ = report_and_registry
        # Small trace -> wide tolerance; the default benchmark scale is
        # checked in the benchmark suite with tighter bounds.
        assert report.mean_deviation < 0.25

    def test_max_deviation_consistent(self, report_and_registry):
        report, _ = report_and_registry
        deviations = [abs(r - 1) for r in report.relative_cost.values()]
        assert report.max_deviation == pytest.approx(max(deviations))

    def test_underestimated_types_listed(self, report_and_registry):
        report, _ = report_and_registry
        for error_type in report.underestimated_types:
            assert report.relative_cost[error_type] < 1.0

    def test_render_orders_by_rank(self, report_and_registry):
        report, registry = report_and_registry
        text = report.render({i.name: i.rank for i in registry})
        assert "Figure 7" in text
        lines = text.splitlines()[2:]
        ranks = [int(line.split("|")[0]) for line in lines[1:]]
        assert ranks == sorted(ranks)

    def test_empty_error_types_rejected(self, small_processes):
        with pytest.raises(ConfigurationError):
            validate_platform(
                small_processes,
                UserDefinedPolicy(CATALOG),
                CATALOG,
                error_types=[],
            )
