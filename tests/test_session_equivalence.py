"""Session-core routing equivalence.

Replay, evaluation, cluster recovery and training all execute through
:mod:`repro.session` now.  The contract of that refactor is
*bit-identical* behaviour: the shared driver must produce exactly the
results the four hand-rolled loops produced before — same float sums in
the same order, same RNG draw sequences, same action traces.  This
module pins the contract by re-implementing the pre-refactor loops
inline (frozen copies of the old code) and comparing exactly, the same
way ``test_backend_equivalence`` pins the dict/array Q-table pair.
"""

from __future__ import annotations

import math

import pytest

from helpers import ladder_processes, make_process
from repro.actions import default_catalog
from repro.cluster.cluster import ClusterConfig, ClusterSimulator
from repro.cluster.faults import FaultCatalog, FaultType
from repro.errors import UnhandledStateError
from repro.evaluation.evaluator import PolicyEvaluator
from repro.learning.qlearning import QLearningConfig, QLearningTrainer
from repro.learning.qtable import QTable
from repro.learning.telemetry import EpisodeRecorder
from repro.mdp.state import RecoveryState
from repro.policies.base import Policy, PolicyDecision
from repro.policies.hybrid import HybridPolicy
from repro.policies.static import (
    AlwaysCheapestPolicy,
    FixedSequencePolicy,
    RandomPolicy,
)
from repro.policies.trained import TrainedPolicy
from repro.policies.user_defined import UserDefinedPolicy
from repro.simplatform.platform import ReplayResult, SimulationPlatform
from repro.util.rng import RngStreams, make_rng

CATALOG = default_catalog()


# ---------------------------------------------------------------------------
# Frozen pre-refactor reference implementations
# ---------------------------------------------------------------------------
def reference_replay(platform, process, policy) -> ReplayResult:
    """The replay loop exactly as it existed before the session core."""
    attempts = process.attempts
    if not attempts:
        return ReplayResult(
            handled=True,
            cost=process.downtime,
            actions=(),
            real_cost=process.downtime,
        )
    state = RecoveryState.initial(process.error_type)
    total = platform.initial_cost(process)
    actions = []
    forced_manual = False
    while not state.is_terminal:
        forced = platform.forced_action(state.attempt_count)
        if forced is not None:
            action_name = forced
            forced_manual = True
        else:
            try:
                action_name = policy.decide(state).action
            except UnhandledStateError:
                return ReplayResult(
                    handled=False,
                    cost=float("nan"),
                    actions=tuple(actions),
                    real_cost=process.downtime,
                )
        outcome = platform.step(process, state, action_name)
        actions.append(action_name)
        total += outcome.cost
        state = outcome.next_state
    return ReplayResult(
        handled=True,
        cost=total,
        actions=tuple(actions),
        real_cost=process.downtime,
        forced_manual=forced_manual,
    )


def reference_evaluate(platform, processes, types, policy):
    """The evaluator's accumulation loop as it existed pre-refactor.

    Returns the raw per-type tallies so comparisons stay exact (no
    dataclass indirection).
    """
    tallies = {
        t: {
            "total": 0,
            "handled": 0,
            "estimated": 0.0,
            "real_handled": 0.0,
            "real_all": 0.0,
        }
        for t in types
    }
    for process in processes:
        tally = tallies[process.error_type]
        tally["total"] += 1
        tally["real_all"] += process.downtime
        result = reference_replay(platform, process, policy)
        if result.handled:
            tally["handled"] += 1
            tally["estimated"] += result.cost
            tally["real_handled"] += result.real_cost
    return tallies


def reference_episode(platform, qtable, explorer, process, sweep, config):
    """The trainer's episode loop as it existed pre-refactor."""
    state = RecoveryState.initial(process.error_type)
    trajectory = []
    while not state.is_terminal:
        action_name = platform.forced_action(state.attempt_count)
        if action_name is None:
            forced = qtable.underexplored_action(
                state, config.min_visits_per_action
            )
            if forced is not None:
                action_name = forced
            else:
                action_name = explorer.select(
                    qtable.values_for(state), sweep
                )
        outcome = platform.step(process, state, action_name)
        trajectory.append(
            (state, action_name, outcome.cost, outcome.next_state)
        )
        state = outcome.next_state
    return trajectory


def replay_snapshot(result: ReplayResult):
    """Exact-comparable tuple (NaN made comparable explicitly)."""
    return (
        result.handled,
        "nan" if math.isnan(result.cost) else result.cost,
        result.actions,
        result.real_cost,
        result.forced_manual,
    )


def mixed_platform():
    processes = (
        ladder_processes(
            "error:Hard",
            [(["TRYNOP", "REBOOT", "REIMAGE"], 6), (["REBOOT"], 3)],
            realistic_durations=True,
        )
        + ladder_processes(
            "error:Soft",
            [(["TRYNOP"], 6), (["TRYNOP", "REBOOT"], 4)],
            realistic_durations=True,
            machine_prefix="s",
        )
    )
    return SimulationPlatform(processes, CATALOG), processes


def policies_under_test():
    """One of each policy family, including a partial trained table."""
    state_hard = RecoveryState.initial("error:Hard")
    state_soft = RecoveryState.initial("error:Soft")
    partial_rules = {
        state_hard: ("REIMAGE", 7_200.0),
        state_soft: ("TRYNOP", 300.0),
        state_soft.after("TRYNOP", False): ("REBOOT", 2_700.0),
    }
    return [
        UserDefinedPolicy(CATALOG),
        AlwaysCheapestPolicy(CATALOG),
        FixedSequencePolicy(["REBOOT", "RMA"], CATALOG),
        TrainedPolicy(partial_rules),
        HybridPolicy(TrainedPolicy(partial_rules), UserDefinedPolicy(CATALOG)),
    ]


class TestReplayEquivalence:
    """platform.replay (session-driven) == the frozen reference loop."""

    @pytest.mark.parametrize(
        "policy_index", range(len(policies_under_test()))
    )
    def test_every_policy_family_bit_identical(self, policy_index):
        platform, processes = mixed_platform()
        policy = policies_under_test()[policy_index]
        for process in processes:
            expected = reference_replay(platform, process, policy)
            got = platform.replay(process, policy)
            assert replay_snapshot(got) == replay_snapshot(expected)

    def test_random_policy_same_rng_stream(self):
        platform, processes = mixed_platform()
        reference_policy = RandomPolicy(CATALOG, seed=11)
        routed_policy = RandomPolicy(CATALOG, seed=11)
        for process in processes:
            expected = reference_replay(platform, process, reference_policy)
            got = platform.replay(process, routed_policy)
            assert replay_snapshot(got) == replay_snapshot(expected)

    def test_self_healed_short_circuit(self):
        platform, _ = mixed_platform()
        healed = make_process([], error_type="error:Hard")
        expected = reference_replay(platform, healed, UserDefinedPolicy())
        got = platform.replay(healed, UserDefinedPolicy())
        assert replay_snapshot(got) == replay_snapshot(expected)

    def test_replay_many_matches_sequential(self):
        platform, processes = mixed_platform()
        for policy in policies_under_test():
            sequential = [
                platform.replay(p, policy) for p in processes
            ]
            batched = platform.replay_many(processes, policy)
            assert [replay_snapshot(r) for r in batched] == [
                replay_snapshot(r) for r in sequential
            ]


class TestEvaluationEquivalence:
    """PolicyEvaluator.evaluate == the frozen accumulation loop."""

    def result_tallies(self, result):
        return {
            t: {
                "total": e.total,
                "handled": e.handled,
                "estimated": e.estimated_cost,
                "real_handled": e.real_cost_handled,
                "real_all": e.real_cost_all,
            }
            for t, e in result.per_type.items()
        }

    @pytest.mark.parametrize(
        "policy_index", range(len(policies_under_test()))
    )
    def test_per_type_sums_bit_identical(self, policy_index):
        _platform, processes = mixed_platform()
        policy = policies_under_test()[policy_index]
        evaluator = PolicyEvaluator(processes, CATALOG)
        expected = reference_evaluate(
            evaluator.platform,
            [p for p in processes],
            evaluator.error_types,
            policy,
        )
        got = evaluator.evaluate(policy)
        assert self.result_tallies(got) == expected
        assert got.skipped == 0

    def test_real_trace_end_to_end(self, small_processes):
        evaluator = PolicyEvaluator(small_processes, CATALOG)
        policy = UserDefinedPolicy(CATALOG)
        expected = reference_evaluate(
            evaluator.platform,
            [
                p
                for p in small_processes
                if p.error_type in set(evaluator.error_types)
            ],
            evaluator.error_types,
            policy,
        )
        got = evaluator.evaluate(policy)
        assert self.result_tallies(got) == expected

    def test_out_of_scope_processes_skipped_and_counted(self):
        """Regression: out-of-scope types must be skipped, not KeyError."""
        _platform, processes = mixed_platform()
        evaluator = PolicyEvaluator(
            processes, CATALOG, error_types=["error:Hard"]
        )
        result = evaluator.evaluate(UserDefinedPolicy(CATALOG))
        out_of_scope = sum(
            1 for p in processes if p.error_type != "error:Hard"
        )
        assert out_of_scope > 0
        assert result.skipped == out_of_scope
        assert set(result.per_type) == {"error:Hard"}
        assert result.per_type["error:Hard"].total == len(processes) - (
            out_of_scope
        )

    def test_scope_filter_does_not_change_in_scope_numbers(self):
        _platform, processes = mixed_platform()
        full = PolicyEvaluator(processes, CATALOG).evaluate(
            UserDefinedPolicy(CATALOG)
        )
        restricted = PolicyEvaluator(
            processes, CATALOG, error_types=["error:Hard"]
        ).evaluate(UserDefinedPolicy(CATALOG))
        assert self.result_tallies(full)["error:Hard"] == (
            self.result_tallies(restricted)["error:Hard"]
        )


class TestTrainingEquivalence:
    """run_episode (session-driven) == the frozen trainer loop."""

    def test_episodes_bit_identical_with_same_rng(self):
        platform, _processes = mixed_platform()
        config = QLearningConfig(seed=5, backend="dict")
        trainer = QLearningTrainer(platform, config)
        training = ladder_processes(
            "error:Hard",
            [(["TRYNOP", "REBOOT", "REIMAGE"], 4)],
            realistic_durations=True,
        )

        reference_table = QTable(
            CATALOG.names(), alpha_floor=config.alpha_floor
        )
        routed_table = QTable(
            CATALOG.names(), alpha_floor=config.alpha_floor
        )
        reference_explorer = trainer._make_explorer(make_rng(5))
        routed_explorer = trainer._make_explorer(make_rng(5))

        for sweep in range(30):
            for process in training:
                expected = reference_episode(
                    platform,
                    reference_table,
                    reference_explorer,
                    process,
                    sweep,
                    config,
                )
                # Reference applies its updates through the same helper.
                trainer._apply_updates(reference_table, expected)
                got = trainer.run_episode(
                    routed_table, routed_explorer, process, sweep
                )
                assert got == expected
        # After 120 interleaved episodes every Q cell still matches
        # exactly, so the RNG streams never diverged.
        assert {
            (s, a): (
                reference_table.value(s, a),
                reference_table.visit_count(s, a),
            )
            for s in reference_table.states()
            for a in CATALOG.names()
        } == {
            (s, a): (
                routed_table.value(s, a),
                routed_table.visit_count(s, a),
            )
            for s in routed_table.states()
            for a in CATALOG.names()
        }

    def test_episode_telemetry_does_not_change_results(self):
        platform, _processes = mixed_platform()
        training = ladder_processes(
            "error:Hard",
            [(["TRYNOP", "REBOOT", "REIMAGE"], 4)],
            realistic_durations=True,
        )
        config = QLearningConfig(
            max_sweeps=25, episodes_per_sweep=4, seed=7
        )

        def snapshot(result):
            table = result.qtable
            return (
                result.sweeps_run,
                result.converged,
                result.episodes,
                {
                    (s, a): (table.value(s, a), table.visit_count(s, a))
                    for s in table.states()
                    for a in CATALOG.names()
                },
            )

        plain = QLearningTrainer(platform, config).train_type(
            "error:Hard", training
        )
        recorder = EpisodeRecorder()
        observed = QLearningTrainer(
            platform, config, episode_telemetry=recorder
        ).train_type("error:Hard", training)
        assert snapshot(observed) == snapshot(plain)
        assert len(recorder) > 0
        assert set(t.origin for t in recorder.traces) == {"training"}
        # Every trace carries per-step provenance from the training rule.
        sources = {
            step.source for t in recorder.traces for step in t.steps
        }
        assert sources <= {"explore:forced", "explore:select", "forced:cap"}


class _DecisionSpy(Policy):
    """Wraps a policy and records every state it is asked to decide."""

    def __init__(self, inner: Policy) -> None:
        self._inner = inner
        self.states = []

    @property
    def name(self) -> str:
        return self._inner.name

    def decide(self, state: RecoveryState) -> PolicyDecision:
        self.states.append(state)
        return self._inner.decide(state)


class TestClusterEquivalence:
    """The cluster's online loop routed through sessions is unchanged."""

    def faults(self):
        return FaultCatalog(
            [
                FaultType(
                    name="transient",
                    primary_symptom="error:Transient",
                    cure_probabilities={"TRYNOP": 0.6, "REBOOT": 0.9},
                    weight=2.0,
                ),
                FaultType(
                    name="hard",
                    primary_symptom="error:Hard",
                    cure_probabilities={"REIMAGE": 0.9},
                ),
            ]
        )

    def config(self, **overrides):
        defaults = dict(
            machine_count=8,
            duration=30 * 86_400.0,
            mean_time_between_failures=3 * 86_400.0,
            noise_probability=0.0,
        )
        defaults.update(overrides)
        return ClusterConfig(**defaults)

    def run(self, seed=5, telemetry=None, policy=None, **overrides):
        simulator = ClusterSimulator(
            self.config(**overrides),
            self.faults(),
            policy if policy is not None else UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(seed),
            episode_telemetry=telemetry,
        )
        return simulator, simulator.run()

    def test_decision_states_follow_markov_chain(self):
        """The session presents exactly the states the old loop built
        from ``machine.actions_tried`` — initial state per process, then
        one action appended per failed attempt."""
        spy = _DecisionSpy(UserDefinedPolicy(CATALOG))
        _simulator, log = self.run(policy=spy)
        # Rebuild the expected decision states from the final log.
        expected = []
        for process in log.to_processes():
            tried = ()
            for action in process.actions:
                expected.append(
                    RecoveryState(
                        error_type=process.error_type,
                        healthy=False,
                        tried=tried,
                    )
                )
                tried = tried + (action,)
        # The spy saw the same multiset of decision states (ordering
        # interleaves across machines in event order).
        assert sorted(
            spy.states, key=lambda s: (s.error_type, s.tried)
        ) == sorted(expected, key=lambda s: (s.error_type, s.tried))

    def test_same_seed_logs_identical_with_telemetry(self):
        recorder = EpisodeRecorder()
        _s1, log1 = self.run(seed=9)
        _s2, log2 = self.run(seed=9, telemetry=recorder)
        assert log1 == log2
        assert len(recorder) == len(log2.to_processes())
        assert set(t.origin for t in recorder.traces) == {"cluster"}

    def test_traces_mirror_log_processes(self):
        recorder = EpisodeRecorder()
        _simulator, log = self.run(seed=4, telemetry=recorder)
        logged = sorted(
            (p.error_type, p.actions) for p in log.to_processes()
        )
        traced = sorted(
            (t.error_type, t.actions()) for t in recorder.traces
        )
        assert traced == logged
        for trace in recorder.traces:
            assert trace.handled
            assert trace.succeeded


class TestFleetClusterEquivalence(TestClusterEquivalence):
    """The fleet backend joins the equivalence matrix.

    Every contract pinned for the session-routed event loop above must
    hold verbatim when the same scenario runs on the vectorized wave
    engine: same log bytes, same decision-state chains, same telemetry.
    Inheriting the reference tests re-runs them on the event backend
    (the fixtures are shared); the additions compare the two backends
    head to head under the machine RNG discipline.
    """

    def run_fleet(self, seed=5, telemetry=None, policy=None, **overrides):
        from repro.cluster.fleet import FleetEngine

        engine = FleetEngine(
            self.config(backend="fleet", **overrides),
            self.faults(),
            policy if policy is not None else UserDefinedPolicy(CATALOG),
            CATALOG,
            RngStreams(seed),
            episode_telemetry=telemetry,
        )
        return engine, engine.run().to_log()

    @pytest.mark.parametrize("seed", [5, 9, 4])
    @pytest.mark.parametrize("noise", [0.0, 0.3])
    def test_fleet_log_matches_event_backend(self, seed, noise):
        _sim, event_log = self.run(
            seed=seed, rng_discipline="machine", noise_probability=noise
        )
        _eng, fleet_log = self.run_fleet(seed=seed, noise_probability=noise)
        assert fleet_log == event_log

    def test_fleet_decision_states_follow_markov_chain(self):
        """The wave engine presents the same per-process state chains to
        the policy as the sequential session loop."""
        spy = _DecisionSpy(UserDefinedPolicy(CATALOG))
        _engine, log = self.run_fleet(policy=spy)
        expected = []
        for process in log.to_processes():
            tried = ()
            for action in process.actions:
                expected.append(
                    RecoveryState(
                        error_type=process.error_type,
                        healthy=False,
                        tried=tried,
                    )
                )
                tried = tried + (action,)
        assert sorted(
            spy.states, key=lambda s: (s.error_type, s.tried)
        ) == sorted(expected, key=lambda s: (s.error_type, s.tried))

    def test_fleet_traces_match_event_traces(self):
        event_recorder = EpisodeRecorder()
        fleet_recorder = EpisodeRecorder()
        _sim, event_log = self.run(
            seed=4, rng_discipline="machine", telemetry=event_recorder
        )
        _eng, fleet_log = self.run_fleet(seed=4, telemetry=fleet_recorder)
        assert fleet_log == event_log
        assert fleet_recorder.traces == event_recorder.traces
        assert set(t.origin for t in fleet_recorder.traces) == {"cluster"}
