"""Tests for repro.actions.costs."""

import numpy as np
import pytest

from repro.actions.costs import DeterministicCost, LognormalCost
from repro.errors import ConfigurationError


class TestDeterministicCost:
    def test_sample_is_constant(self):
        cost = DeterministicCost(42.0)
        rng = np.random.default_rng(0)
        assert cost.sample(rng) == 42.0
        assert cost.mean == 42.0

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            DeterministicCost(0.0)


class TestLognormalCost:
    def test_mean_property(self):
        assert LognormalCost(1800.0, cv=0.3).mean == 1800.0

    def test_sample_mean_matches_target(self):
        cost = LognormalCost(1000.0, cv=0.3)
        rng = np.random.default_rng(1)
        samples = [cost.sample(rng) for _ in range(20_000)]
        assert abs(np.mean(samples) - 1000.0) / 1000.0 < 0.02

    def test_sample_cv_matches_target(self):
        cost = LognormalCost(1000.0, cv=0.5)
        rng = np.random.default_rng(2)
        samples = np.array([cost.sample(rng) for _ in range(20_000)])
        cv = samples.std() / samples.mean()
        assert abs(cv - 0.5) < 0.05

    def test_samples_positive(self):
        cost = LognormalCost(10.0, cv=1.5)
        rng = np.random.default_rng(3)
        assert all(cost.sample(rng) > 0 for _ in range(100))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LognormalCost(-5.0)
        with pytest.raises(ConfigurationError):
            LognormalCost(5.0, cv=0.0)
