"""Tests for symptom co-occurrence counting."""

import pytest

from repro.errors import MiningError
from repro.mining.dependence import SymptomCooccurrence


@pytest.fixture
def cooc():
    transactions = [
        frozenset({"a", "b"}),
        frozenset({"a", "b", "c"}),
        frozenset({"a"}),
        frozenset({"c"}),
    ]
    return SymptomCooccurrence.from_transactions(transactions)


class TestCounts:
    def test_transaction_count(self, cooc):
        assert cooc.transaction_count == 4

    def test_item_counts(self, cooc):
        assert cooc.count("a") == 3
        assert cooc.count("c") == 2
        assert cooc.count("missing") == 0

    def test_pair_counts_symmetric(self, cooc):
        assert cooc.pair_count("a", "b") == 2
        assert cooc.pair_count("b", "a") == 2

    def test_pair_count_self_is_item_count(self, cooc):
        assert cooc.pair_count("a", "a") == 3

    def test_support(self, cooc):
        assert cooc.support("a") == pytest.approx(0.75)

    def test_items_sorted(self, cooc):
        assert cooc.items == ("a", "b", "c")


class TestDependence:
    def test_dependence_given(self, cooc):
        assert cooc.dependence_given("b", "a") == pytest.approx(1.0)
        assert cooc.dependence_given("a", "b") == pytest.approx(2 / 3)

    def test_pair_dependence_is_minimum(self, cooc):
        assert cooc.pair_dependence("a", "b") == pytest.approx(2 / 3)

    def test_unknown_item_raises(self, cooc):
        with pytest.raises(MiningError):
            cooc.dependence_given("missing", "a")

    def test_dependent_pairs_thresholding(self, cooc):
        pairs_low = set(cooc.dependent_pairs(0.3))
        pairs_high = set(cooc.dependent_pairs(0.9))
        assert ("a", "b") in pairs_low
        assert ("a", "b") not in pairs_high

    def test_dependent_pairs_subset_property(self, cooc):
        # Raising minp can only shrink the pair set.
        low = set(cooc.dependent_pairs(0.2))
        high = set(cooc.dependent_pairs(0.6))
        assert high <= low

    def test_empty_transactions(self):
        cooc = SymptomCooccurrence.from_transactions([])
        assert cooc.transaction_count == 0
        assert cooc.support("x") == 0.0
        assert cooc.dependent_pairs(0.5) == []


class TestIncrementalUpdates:
    TRANSACTIONS = [
        frozenset({"a", "b"}),
        frozenset({"a", "b", "c"}),
        frozenset({"a"}),
        frozenset({"c", "d"}),
        frozenset({"b", "d"}),
        frozenset({"e"}),
    ]

    def test_incremental_equals_batch(self):
        batch = SymptomCooccurrence.from_transactions(self.TRANSACTIONS)
        incremental = SymptomCooccurrence()
        incremental.update(self.TRANSACTIONS[:2])
        for transaction in self.TRANSACTIONS[2:]:
            incremental.add(transaction)
        assert incremental.items == batch.items
        assert incremental.transaction_count == batch.transaction_count
        for item in batch.items:
            assert incremental.count(item) == batch.count(item)
        items = batch.items
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                assert incremental.pair_count(a, b) == batch.pair_count(a, b)

    def test_dependent_pairs_independent_of_insertion_order(self):
        forward = SymptomCooccurrence.from_transactions(self.TRANSACTIONS)
        backward = SymptomCooccurrence.from_transactions(
            list(reversed(self.TRANSACTIONS))
        )
        assert forward.dependent_pairs(0.3) == backward.dependent_pairs(0.3)

    def test_update_returns_self_for_chaining(self):
        cooc = SymptomCooccurrence().update(self.TRANSACTIONS)
        assert cooc.transaction_count == len(self.TRANSACTIONS)

    def test_capacity_growth_preserves_counts(self):
        # Force several geometric growths past the initial capacity.
        singles = [frozenset({f"sym-{i:03d}"}) for i in range(200)]
        cooc = SymptomCooccurrence().update(singles)
        assert cooc.symptom_count == 200
        assert all(cooc.count(f"sym-{i:03d}") == 1 for i in range(200))

    def test_duplicate_items_in_transaction_counted_once(self):
        cooc = SymptomCooccurrence()
        cooc.add(["a", "a", "b"])
        assert cooc.count("a") == 1
        assert cooc.pair_count("a", "b") == 1
