"""Tests for symptom co-occurrence counting."""

import pytest

from repro.errors import MiningError
from repro.mining.dependence import SymptomCooccurrence


@pytest.fixture
def cooc():
    transactions = [
        frozenset({"a", "b"}),
        frozenset({"a", "b", "c"}),
        frozenset({"a"}),
        frozenset({"c"}),
    ]
    return SymptomCooccurrence.from_transactions(transactions)


class TestCounts:
    def test_transaction_count(self, cooc):
        assert cooc.transaction_count == 4

    def test_item_counts(self, cooc):
        assert cooc.count("a") == 3
        assert cooc.count("c") == 2
        assert cooc.count("missing") == 0

    def test_pair_counts_symmetric(self, cooc):
        assert cooc.pair_count("a", "b") == 2
        assert cooc.pair_count("b", "a") == 2

    def test_pair_count_self_is_item_count(self, cooc):
        assert cooc.pair_count("a", "a") == 3

    def test_support(self, cooc):
        assert cooc.support("a") == pytest.approx(0.75)

    def test_items_sorted(self, cooc):
        assert cooc.items == ("a", "b", "c")


class TestDependence:
    def test_dependence_given(self, cooc):
        assert cooc.dependence_given("b", "a") == pytest.approx(1.0)
        assert cooc.dependence_given("a", "b") == pytest.approx(2 / 3)

    def test_pair_dependence_is_minimum(self, cooc):
        assert cooc.pair_dependence("a", "b") == pytest.approx(2 / 3)

    def test_unknown_item_raises(self, cooc):
        with pytest.raises(MiningError):
            cooc.dependence_given("missing", "a")

    def test_dependent_pairs_thresholding(self, cooc):
        pairs_low = set(cooc.dependent_pairs(0.3))
        pairs_high = set(cooc.dependent_pairs(0.9))
        assert ("a", "b") in pairs_low
        assert ("a", "b") not in pairs_high

    def test_dependent_pairs_subset_property(self, cooc):
        # Raising minp can only shrink the pair set.
        low = set(cooc.dependent_pairs(0.2))
        high = set(cooc.dependent_pairs(0.6))
        assert high <= low

    def test_empty_transactions(self):
        cooc = SymptomCooccurrence.from_transactions([])
        assert cooc.transaction_count == 0
        assert cooc.support("x") == 0.0
        assert cooc.dependent_pairs(0.5) == []
