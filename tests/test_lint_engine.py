"""Engine mechanics: findings, suppressions, baselines, reporting."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisError,
    Baseline,
    BaselineError,
    Finding,
    collect_suppressions,
    render_json,
    render_text,
    run_lint,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


def make_finding(rule="R1", path="pkg/mod.py", line=10, message="boom"):
    return Finding(
        path=path,
        line=line,
        column=4,
        rule=rule,
        message=message,
        suggestion="fix it",
    )


class TestFinding:
    def test_sorts_by_location_then_rule(self):
        first = make_finding(path="a.py", line=1)
        second = make_finding(path="a.py", line=9)
        third = make_finding(path="b.py", line=1)
        assert sorted([third, second, first]) == [first, second, third]

    def test_round_trips_through_dict(self):
        finding = make_finding()
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_identity_ignores_line(self):
        assert (
            make_finding(line=10).identity()
            == make_finding(line=99).identity()
        )


class TestSuppressions:
    def test_reason_and_rules_parsed(self):
        source = "x = id(y)  # repro-lint: disable=R1 pinned and verified\n"
        suppressions = collect_suppressions(source)
        assert suppressions[1].rules == ("R1",)
        assert suppressions[1].reason == "pinned and verified"

    def test_multi_rule_and_all(self):
        source = (
            "a = 1  # repro-lint: disable=R1,R3 two rules\n"
            "b = 2  # repro-lint: disable=all everything\n"
        )
        suppressions = collect_suppressions(source)
        assert suppressions[1].covers("R1")
        assert suppressions[1].covers("r3")
        assert not suppressions[1].covers("R2")
        assert suppressions[2].covers("R6")

    def test_marker_inside_string_literal_ignored(self):
        source = 's = "# repro-lint: disable=R1 not a comment"\n'
        assert collect_suppressions(source) == {}

    def test_suppressed_findings_leave_the_report(self):
        report = run_lint([FIXTURES / "suppressed.py"], root=FIXTURES)
        assert report.clean
        assert len(report.suppressed) == 2
        assert {finding.rule for finding in report.suppressed} == {
            "R1",
            "R3",
        }

    def test_suppression_covers_only_named_rules(self):
        # The same file linted with a rule its comments do not name
        # would still report; here every comment names its rule.
        report = run_lint(
            [FIXTURES / "suppressed.py"], root=FIXTURES, rules=["R1"]
        )
        assert report.clean
        assert len(report.suppressed) == 1


class TestBaseline:
    def test_round_trip(self, tmp_path):
        report = run_lint([FIXTURES / "r1_bad.py"], root=FIXTURES)
        assert len(report.findings) == 3
        path = tmp_path / "baseline.json"
        Baseline(list(report.findings)).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 3
        assert loaded.filter_new(report.findings) == []

    def test_save_is_deterministic(self, tmp_path):
        findings = [make_finding(line=9), make_finding(line=2)]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        Baseline(findings).save(first)
        Baseline(list(reversed(findings))).save(second)
        assert first.read_text() == second.read_text()

    def test_baselined_findings_subtracted(self, tmp_path):
        r1 = run_lint([FIXTURES / "r1_bad.py"], root=FIXTURES)
        path = tmp_path / "baseline.json"
        Baseline(list(r1.findings)).save(path)
        report = run_lint(
            [FIXTURES / "r1_bad.py", FIXTURES / "r6_bad.py"],
            root=FIXTURES,
            baseline=Baseline.load(path),
        )
        assert report.baselined == 3
        assert {finding.rule for finding in report.findings} == {"R6"}

    def test_multiplicity_is_respected(self):
        baseline = Baseline([make_finding(line=1), make_finding(line=2)])
        current = [
            make_finding(line=1),
            make_finding(line=2),
            make_finding(line=3),
        ]
        new = baseline.filter_new(current)
        assert len(new) == 1

    def test_missing_file_is_explicit_error(self, tmp_path):
        with pytest.raises(BaselineError, match="not found"):
            Baseline.load(tmp_path / "absent.json")

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError, match="not JSON"):
            Baseline.load(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError, match="version"):
            Baseline.load(path)


class TestEngine:
    def test_unknown_rule_id_rejected(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            run_lint([FIXTURES / "r1_bad.py"], rules=["R99"])

    def test_deep_rule_needs_deep_flag(self):
        with pytest.raises(AnalysisError, match="re-run with --deep"):
            run_lint([FIXTURES / "r1_bad.py"], rules=["R9"])

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(AnalysisError, match="does not exist"):
            run_lint([tmp_path / "nowhere"])

    def test_unparseable_file_rejected(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        with pytest.raises(AnalysisError, match="cannot parse"):
            run_lint([bad])

    def test_paths_relative_to_root_and_posix(self):
        report = run_lint([FIXTURES / "r1_bad.py"], root=FIXTURES.parent)
        assert {finding.path for finding in report.findings} == {
            "lint/r1_bad.py"
        }

    def test_directory_walk_deduplicates(self):
        once = run_lint([FIXTURES], root=FIXTURES)
        twice = run_lint(
            [FIXTURES, FIXTURES / "r1_bad.py"], root=FIXTURES
        )
        assert once.files_scanned == twice.files_scanned
        assert once.findings == twice.findings

    def test_rule_selection_filters(self):
        report = run_lint(
            [FIXTURES / "r1_bad.py"], root=FIXTURES, rules=["R6"]
        )
        assert report.clean


class TestReporting:
    def test_text_report_lists_location_rule_and_fix(self):
        report = run_lint([FIXTURES / "r6_bad.py"], root=FIXTURES)
        text = render_text(report)
        assert "r6_bad.py:5" in text
        assert "R6" in text
        assert "fix:" in text
        assert "3 findings in 1 file" in text

    def test_text_report_counts_suppressions(self):
        report = run_lint([FIXTURES / "suppressed.py"], root=FIXTURES)
        assert "(2 suppressed)" in render_text(report)

    def test_json_report_parses_and_round_trips(self):
        report = run_lint([FIXTURES / "r4_bad.py"], root=FIXTURES)
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert len(payload["findings"]) == len(report.findings)
        rebuilt = [
            Finding.from_dict(entry) for entry in payload["findings"]
        ]
        assert tuple(rebuilt) == report.findings


class TestBudget:
    def test_generous_budget_passes_through(self):
        report = run_lint(
            [FIXTURES / "r1_bad.py"],
            root=FIXTURES,
            budget_seconds=120.0,
            stats=True,
        )
        assert report.stats is not None
        assert report.stats.files == 1

    def test_overrun_raises_with_partial_stats(self):
        from repro.analysis.engine import BudgetExceededError

        # An impossibly small budget trips the first between-stage
        # check (a stage is never interrupted mid-flight).
        with pytest.raises(BudgetExceededError) as excinfo:
            run_lint(
                [FIXTURES / "r1_bad.py"],
                root=FIXTURES,
                budget_seconds=1e-9,
            )
        error = excinfo.value
        assert "budget" in str(error)
        assert "parse" in str(error)
        assert "parse" in error.stats.timings

    def test_overrun_is_an_analysis_error(self):
        from repro.analysis.engine import BudgetExceededError

        assert issubclass(BudgetExceededError, AnalysisError)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(AnalysisError, match="budget_seconds"):
            run_lint([FIXTURES / "r1_bad.py"], budget_seconds=0.0)

    def test_deep_pass_checks_between_stages(self):
        from repro.analysis.engine import BudgetExceededError

        # Deep lint on a real fixture with a sub-parse budget still
        # names the overrunning stage in the error.
        with pytest.raises(BudgetExceededError, match="after stage"):
            run_lint(
                [FIXTURES / "r1_bad.py"],
                root=FIXTURES,
                deep=True,
                budget_seconds=1e-9,
            )
