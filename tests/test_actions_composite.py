"""Tests for composite repair actions."""

import numpy as np
import pytest

from repro.actions import REBOOT, RMA, TRYNOP
from repro.actions.action import ActionCatalog, RepairAction
from repro.actions.composite import SumCost, compose_actions
from repro.actions.costs import DeterministicCost
from repro.errors import ConfigurationError


class TestSumCost:
    def test_mean_is_sum(self):
        cost = SumCost((DeterministicCost(10.0), DeterministicCost(5.0)))
        assert cost.mean == 15.0

    def test_sample_is_sum(self):
        cost = SumCost((DeterministicCost(10.0), DeterministicCost(5.0)))
        assert cost.sample(np.random.default_rng(0)) == 15.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SumCost(())


class TestComposeActions:
    def test_composite_sums_costs(self):
        composite = compose_actions(
            "WATCH+REBOOT", [TRYNOP, REBOOT], strength=1
        )
        assert composite.cost_model.mean == pytest.approx(
            TRYNOP.cost_model.mean + REBOOT.cost_model.mean
        )

    def test_strength_must_dominate_components(self):
        with pytest.raises(ConfigurationError, match="replace"):
            compose_actions("BAD", [TRYNOP, REBOOT], strength=0)

    def test_manual_components_rejected(self):
        with pytest.raises(ConfigurationError, match="manual"):
            compose_actions("BAD", [RMA], strength=5)

    def test_empty_components_rejected(self):
        with pytest.raises(ConfigurationError):
            compose_actions("BAD", [], strength=0)

    def test_composite_is_catalog_compatible(self):
        composite = compose_actions(
            "REBOOT+FSCK", [TRYNOP, REBOOT], strength=2
        )
        catalog = ActionCatalog(
            [
                TRYNOP,
                REBOOT,
                composite,
                RepairAction(
                    "RMA", 3, DeterministicCost(1000.0), manual=True
                ),
            ]
        )
        assert catalog["REBOOT+FSCK"].can_replace(REBOOT)
        assert catalog.names() == [
            "TRYNOP",
            "REBOOT",
            "REBOOT+FSCK",
            "RMA",
        ]

    def test_composite_usable_in_recovery_pipeline(self):
        """A catalog with a composite flows through simulation + replay."""
        from repro.cluster import ClusterConfig, ClusterSimulator
        from repro.cluster.faults import FaultCatalog, FaultType
        from repro.policies import UserDefinedPolicy
        from repro.simplatform import SimulationPlatform
        from repro.util.rng import RngStreams

        composite = compose_actions(
            "REBOOT+FSCK", [TRYNOP, REBOOT], strength=2
        )
        catalog = ActionCatalog(
            [
                TRYNOP,
                REBOOT,
                composite,
                RepairAction(
                    "RMA", 3, DeterministicCost(100_000.0), manual=True
                ),
            ]
        )
        faults = FaultCatalog(
            [
                FaultType(
                    name="fsck-needing",
                    primary_symptom="error:Fs",
                    cure_probabilities={"REBOOT+FSCK": 0.95},
                )
            ]
        )
        simulator = ClusterSimulator(
            ClusterConfig(
                machine_count=10,
                duration=20 * 86_400.0,
                mean_time_between_failures=2 * 86_400.0,
                noise_probability=0.0,
            ),
            faults,
            UserDefinedPolicy(
                catalog,
                retry_budgets={"TRYNOP": 1, "REBOOT": 1, "REBOOT+FSCK": 1},
            ),
            catalog,
            RngStreams(2),
        )
        log = simulator.run()
        processes = log.to_processes()
        assert processes
        platform = SimulationPlatform(processes, catalog)
        policy = UserDefinedPolicy(
            catalog,
            retry_budgets={"TRYNOP": 1, "REBOOT": 1, "REBOOT+FSCK": 1},
        )
        for process in processes[:50]:
            result = platform.replay(process, policy)
            assert result.handled
            assert result.cost == pytest.approx(result.real_cost)
