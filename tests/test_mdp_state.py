"""Tests for the recovery MDP state."""

import pytest

from repro.errors import ConfigurationError
from repro.mdp.state import RecoveryState


class TestConstruction:
    def test_initial_state(self):
        state = RecoveryState.initial("error:X")
        assert state.error_type == "error:X"
        assert not state.healthy
        assert state.tried == ()
        assert not state.is_terminal

    def test_empty_error_type_rejected(self):
        with pytest.raises(ConfigurationError):
            RecoveryState.initial("")

    def test_healthy_requires_an_action(self):
        with pytest.raises(ConfigurationError):
            RecoveryState("error:X", healthy=True, tried=())

    def test_hashable_and_equal_by_value(self):
        a = RecoveryState("error:X", tried=("TRYNOP",))
        b = RecoveryState("error:X", tried=("TRYNOP",))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestTransitions:
    def test_after_failure_extends_history(self):
        state = RecoveryState.initial("error:X")
        nxt = state.after("TRYNOP", healthy=False)
        assert nxt.tried == ("TRYNOP",)
        assert not nxt.is_terminal
        assert nxt.attempt_count == 1

    def test_after_success_is_terminal(self):
        state = RecoveryState.initial("error:X")
        nxt = state.after("REBOOT", healthy=True)
        assert nxt.is_terminal
        assert nxt.tried == ("REBOOT",)

    def test_terminal_cannot_act(self):
        terminal = RecoveryState.initial("error:X").after("RMA", True)
        with pytest.raises(ConfigurationError):
            terminal.after("TRYNOP", False)

    def test_after_preserves_original(self):
        state = RecoveryState.initial("error:X")
        state.after("TRYNOP", False)
        assert state.tried == ()

    def test_empty_action_rejected(self):
        with pytest.raises(ConfigurationError):
            RecoveryState.initial("error:X").after("", False)

    def test_order_matters_for_identity(self):
        a = RecoveryState("error:X", tried=("A", "B"))
        b = RecoveryState("error:X", tried=("B", "A"))
        assert a != b


class TestViews:
    def test_last_action(self):
        state = RecoveryState("error:X", tried=("A", "B"))
        assert state.last_action == "B"

    def test_last_action_empty_raises(self):
        with pytest.raises(ConfigurationError):
            RecoveryState.initial("error:X").last_action

    def test_tried_counts(self):
        state = RecoveryState("error:X", tried=("A", "B", "A"))
        assert state.tried_counts() == {"A": 2, "B": 1}

    def test_key_round_trip(self):
        state = RecoveryState("error:X", tried=("A",))
        assert state.key() == ("error:X", False, ("A",))

    def test_str_representation(self):
        state = RecoveryState("error:X", tried=("A",))
        assert "error:X" in str(state)
        assert "A" in str(state)
