"""Tests for static baseline policies."""

import pytest

from repro.actions import default_catalog
from repro.errors import ConfigurationError
from repro.mdp.state import RecoveryState
from repro.policies.static import (
    AlwaysCheapestPolicy,
    AlwaysStrongestPolicy,
    FixedSequencePolicy,
    RandomPolicy,
)

CATALOG = default_catalog()
S0 = RecoveryState.initial("error:X")


def chain(policy, steps):
    state = S0
    actions = []
    for _ in range(steps):
        action = policy.decide(state).action
        actions.append(action)
        state = state.after(action, False)
    return actions


class TestAlwaysCheapest:
    def test_retries_then_escalates(self):
        policy = AlwaysCheapestPolicy(CATALOG, max_attempts_per_action=2)
        assert chain(policy, 7) == [
            "TRYNOP",
            "TRYNOP",
            "REBOOT",
            "REBOOT",
            "REIMAGE",
            "REIMAGE",
            "RMA",
        ]

    def test_manual_unbounded(self):
        policy = AlwaysCheapestPolicy(CATALOG, max_attempts_per_action=1)
        assert chain(policy, 6)[3:] == ["RMA", "RMA", "RMA"]

    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            AlwaysCheapestPolicy(CATALOG, max_attempts_per_action=0)

    def test_terminal_rejected(self):
        with pytest.raises(ConfigurationError):
            AlwaysCheapestPolicy(CATALOG).decide(
                RecoveryState("error:X", True, ("RMA",))
            )


class TestAlwaysStrongest:
    def test_goes_straight_to_manual(self):
        assert chain(AlwaysStrongestPolicy(CATALOG), 2) == ["RMA", "RMA"]


class TestRandomPolicy:
    def test_seeded_reproducibility(self):
        a = chain(RandomPolicy(CATALOG, seed=4), 10)
        b = chain(RandomPolicy(CATALOG, seed=4), 10)
        assert a == b

    def test_covers_all_actions_eventually(self):
        policy = RandomPolicy(CATALOG, seed=0)
        assert set(chain(policy, 60)) == set(CATALOG.names())


class TestFixedSequence:
    def test_follows_sequence_then_repeats_final(self):
        policy = FixedSequencePolicy(["REIMAGE", "RMA"], CATALOG)
        assert chain(policy, 4) == ["REIMAGE", "RMA", "RMA", "RMA"]

    def test_final_action_must_be_manual(self):
        with pytest.raises(ConfigurationError):
            FixedSequencePolicy(["TRYNOP", "REBOOT"], CATALOG)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedSequencePolicy([], CATALOG)

    def test_unknown_action_rejected(self):
        from repro.errors import UnknownActionError

        with pytest.raises(UnknownActionError):
            FixedSequencePolicy(["FSCK", "RMA"], CATALOG)

    def test_name_describes_sequence(self):
        policy = FixedSequencePolicy(["REIMAGE", "RMA"], CATALOG)
        assert "REIMAGE" in policy.name
