"""R6-clean: tolerances, integer equality and infinity sentinels."""

import math

EPSILON = 1e-9


def converged(previous, current):
    return abs(current - previous) < EPSILON


def is_unit(x):
    return math.isclose(x, 1.0)


def unreachable(cost):
    # Infinity compares exactly; the sentinel check is legitimate.
    return cost == float("inf")


def count_matches(left, right):
    return left == right and len(left) == 0
