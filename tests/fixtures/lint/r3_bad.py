"""R3 violations: wall clock and unscoped perf counters."""

import time
from datetime import date, datetime


def stamp_episode(episode):
    episode.started_at = time.time()
    episode.day = date.today()
    return datetime.now()


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
