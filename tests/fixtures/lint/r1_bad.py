"""R1 violations: id()-keyed caches and dict keys."""

_CACHE = {}
_MEMO = {}


def cached_lookup(scenario, fraction):
    key = (id(scenario), fraction)
    if key in _CACHE:
        return _CACHE[key]
    value = expensive(scenario, fraction)
    _CACHE[key] = value
    return value


def memo_by_address(process):
    key = id(process)
    return _MEMO.get(key)


def literal_key(obj):
    return {id(obj): obj.name}


def expensive(scenario, fraction):
    return (scenario, fraction)
