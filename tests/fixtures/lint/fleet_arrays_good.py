"""Clean twins of ``fleet_arrays_bad.py``: value keys, ordered iteration.

Per-catalog arrays are compiled into a value-identified holder instead
of an ``id()``-keyed cache, and wave grouping iterates ``np.unique``
output (sorted, deterministic) rather than a bare set.
"""

import numpy as np


class CompiledCatalog:
    """Arrays travel with their owner; no address-keyed cache needed."""

    def __init__(self, catalog):
        self.cumulative = np.cumsum(catalog.weights)


def wave_groups(action_ids):
    groups = []
    for aid in np.unique(action_ids).tolist():
        groups.append(np.flatnonzero(action_ids == aid))
    return groups


def machine_labels(machines, names):
    return [names[m] for m in sorted({int(m) for m in machines})]
