"""R4-clean: sorted() pins the order; membership needs no order."""


def emit(names, extra):
    for name in sorted(set(names)):
        print(name)
    rows = [n.upper() for n in sorted({x.strip() for x in names})]
    joined = ",".join(sorted(frozenset(extra)))
    wanted = "a" in set(names)
    return rows, sorted(set(names)), joined, wanted
