"""Pre-fix copy of experiments/figures.py's memo (PR 1 tree, trimmed).

Same R1 bug class as prefix_bundle.py: the tree-comparison cache keys
by ``id(scenario)`` without holding the scenario, so address reuse
after garbage collection aliases a different scenario's comparison.
"""

from typing import Dict

_TREE_COMPARISON_CACHE: Dict[tuple, object] = {}


def _tree_comparison(scenario, fraction=0.4, standard_cap=280, config=None):
    """Run both training courses once and cache the comparison."""
    key = (id(scenario), fraction, standard_cap, config)
    if key in _TREE_COMPARISON_CACHE:
        return _TREE_COMPARISON_CACHE[key]
    comparison = (scenario, fraction, standard_cap, config)
    _TREE_COMPARISON_CACHE[key] = comparison
    return comparison
