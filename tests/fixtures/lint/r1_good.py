"""R1-clean: value-based keys and transient id() uses."""

_CACHE = {}


def cached_lookup(scenario, fraction):
    key = (scenario.seed, fraction)
    if key in _CACHE:
        return _CACHE[key]
    value = expensive(scenario, fraction)
    _CACHE[key] = value
    return value


def debug_label(obj):
    # Transient formatting of an address is not a keying hazard.
    return f"<{type(obj).__name__} at {id(obj):#x}>"


def same_object(left, right):
    return id(left) == id(right)


def expensive(scenario, fraction):
    return (scenario, fraction)
