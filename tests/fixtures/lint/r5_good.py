"""R5-clean: module-level workers and plain-data arguments."""

from concurrent.futures import ProcessPoolExecutor


def _train_one(item):
    return item[0], len(item[1])


def _init_worker(seed):
    return seed


def train_all(groups):
    with ProcessPoolExecutor(
        initializer=_init_worker, initargs=(7,)
    ) as executor:
        futures = [
            executor.submit(_train_one, item) for item in groups.items()
        ]
    return futures
