"""R3-clean: time comes from the replayed log, never the host."""


def stamp_episode(episode, entry):
    episode.started_at = entry.timestamp
    return episode.started_at


def downtime(entries):
    return entries[-1].timestamp - entries[0].timestamp
