"""Pre-fix copy of experiments/bundle.py's memo (PR 1 tree, trimmed).

Kept verbatim so the gate provably catches the live R1 violation this
PR fixed: the cache key embeds ``id(scenario)`` without pinning the
scenario, so a new scenario allocated at a recycled address would
silently reuse a dead scenario's bundle.
"""

from typing import Dict, Optional, Tuple

PipelineConfig = FractionBundle = object

_CACHE: Dict[Tuple[int, float, Optional[object]], object] = {}


def train_fraction(scenario, fraction, *, config=None, use_cache=True):
    # PipelineConfig is a frozen dataclass of frozen parts, so it keys
    # the cache directly; the scenario keys by identity (it holds the
    # trace, which is not cheaply hashable).
    key = (id(scenario), fraction, config)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    bundle = (scenario, fraction, config)
    if use_cache:
        _CACHE[key] = bundle
    return bundle
