"""R7 clean twin: only a derived seed crosses the process boundary."""

from r7_good_pool import dispatch

from repro.util.rng import derive_seed


def train(seed):
    return dispatch(derive_seed(seed, "worker", 0))
