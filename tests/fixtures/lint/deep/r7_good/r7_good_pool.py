"""The dispatcher half of the R7 clean pair: workers rebuild the rng."""

from concurrent.futures import ProcessPoolExecutor

from repro.util.rng import make_rng


def work(worker_seed):
    rng = make_rng(worker_seed)
    return rng.random()


def dispatch(worker_seed):
    with ProcessPoolExecutor(max_workers=2) as pool:
        future = pool.submit(work, worker_seed)
    return future.result()
