"""Inline suppressions silence deep findings exactly like syntactic ones.

Every block below violates one of R7-R10 on purpose; each finding line
carries a reasoned ``repro-lint: disable`` comment, so a ``--deep`` run
over this directory must come back clean with four suppressions.
"""

import json
from concurrent.futures import ProcessPoolExecutor

from repro.util.rng import make_rng


def work(gen):
    return gen.random()


def ship(seed):
    rng = make_rng(seed)
    with ProcessPoolExecutor(max_workers=2) as pool:
        pool.submit(work, rng)  # repro-lint: disable=R7 harness pins worker draw order in replay


class Holder:
    def __init__(self, seed):
        rng = make_rng(seed)  # repro-lint: disable=R8 lockstep draws are the point of this holder
        self.left = rng
        self.right = rng


def unordered(items):
    return set(items)


def sweep(seed, items):
    rng = make_rng(seed)
    total = 0.0
    for _ in unordered(items):
        total += rng.random()  # repro-lint: disable=R9 sum is order-insensitive
    return total


def dump(items):
    names = {item.name for item in items}
    return json.dumps(list(names))  # repro-lint: disable=R10 consumer sorts before diffing
