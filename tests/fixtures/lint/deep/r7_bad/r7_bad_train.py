"""R7 true positive: a Generator object crosses a process boundary.

The generator is created here and handed to a dispatcher in another
module, which forwards it into a ProcessPoolExecutor submission — the
violation is only visible across the function/module boundary.
"""

from r7_bad_pool import dispatch

from repro.util.rng import make_rng


def train(seed):
    rng = make_rng(seed)
    return dispatch(rng)
