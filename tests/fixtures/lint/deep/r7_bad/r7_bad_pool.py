"""The dispatcher half of the R7 true-positive pair."""

from concurrent.futures import ProcessPoolExecutor


def work(gen):
    return gen.random()


def dispatch(gen):
    with ProcessPoolExecutor(max_workers=2) as pool:
        future = pool.submit(work, gen)
    return future.result()
