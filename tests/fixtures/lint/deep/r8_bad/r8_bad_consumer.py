"""Second consumer of the ``episode`` channel (see r8_bad_streams)."""

from r8_bad_streams import STREAMS


def evaluate():
    return STREAMS.get("episode").random()
