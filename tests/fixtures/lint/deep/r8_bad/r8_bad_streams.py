"""R8 true positive (channel aliasing): one channel, two consumers.

``evaluate`` lives in another module and fetches the same named
channel — only the whole-program view sees both consumers.
"""

from repro.util.rng import RngStreams

STREAMS = RngStreams()


def explore():
    return STREAMS.get("episode").random()
