"""R8 true positive (retention aliasing): one Generator, two slots."""

from repro.util.rng import make_rng


class Policy:
    def __init__(self, seed):
        rng = make_rng(seed)
        self.action_rng = rng
        self.noise_rng = rng
