"""Produces the unordered collection for the R9 clean pair."""


def load_processes():
    return set(["db", "web", "cache"])
