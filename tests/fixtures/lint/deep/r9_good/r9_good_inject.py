"""Draws from the caller's per-item generator (see r9_good_driver)."""


def inject_error(process, rng):
    return process, rng.random()
