"""R9 clean twin: sorted iteration plus a per-item derived generator.

Deriving inside the loop means no generator state survives across
iterations, so iteration order cannot leak into the draws.
"""

from r9_good_inject import inject_error
from r9_good_topology import load_processes

from repro.util.rng import derive_rng


def run(seed):
    for process in sorted(load_processes()):
        inject_error(process, derive_rng(seed, process))
