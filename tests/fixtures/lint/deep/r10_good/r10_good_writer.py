"""Serializes whatever it is handed (see r10_good_collect)."""

import json


def write_summary(names):
    return json.dumps(list(names))
