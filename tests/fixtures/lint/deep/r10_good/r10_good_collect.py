"""R10 clean twin: the set is sorted before it reaches the writer."""

from r10_good_writer import write_summary


def summarize(episodes):
    names = {episode.name for episode in episodes}
    return write_summary(sorted(names))
