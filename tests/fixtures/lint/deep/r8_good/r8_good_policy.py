"""R8 clean twin: one derived generator (or channel) per consumer."""

from repro.util.rng import RngStreams, derive_rng

STREAMS = RngStreams()


class Policy:
    def __init__(self, seed):
        self.action_rng = derive_rng(seed, "action")
        self.noise_rng = derive_rng(seed, "noise")


def explore():
    return STREAMS.get("explore").random()


def evaluate():
    return STREAMS.get("evaluate").random()
