"""R10 true positive: set-ordered value serialized by another module."""

from r10_bad_writer import write_summary


def summarize(episodes):
    names = {episode.name for episode in episodes}
    return write_summary(names)
