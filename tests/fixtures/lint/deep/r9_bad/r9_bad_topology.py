"""Produces the unordered collection for the R9 true-positive pair."""


def load_processes():
    return set(["db", "web", "cache"])
