"""R9 true positive: persistent generator drawn under set iteration.

The unordered collection comes out of one module, the draw happens
inside a helper in another — neither file shows the bug on its own.
"""

from r9_bad_inject import inject_error
from r9_bad_topology import load_processes

from repro.util.rng import make_rng


def run(seed):
    rng = make_rng(seed)
    for process in load_processes():
        inject_error(process, rng)
