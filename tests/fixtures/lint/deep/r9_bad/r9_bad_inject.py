"""Draws from the caller's generator (see r9_bad_driver)."""


def inject_error(process, rng):
    return process, rng.random()
