"""R5 violations: pickle-unsafe callables shipped to process pools."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Pool, Process


def train_all(groups):
    def train_one(item):
        return item[0], len(item[1])

    with ProcessPoolExecutor(initializer=lambda: None) as executor:
        futures = [
            executor.submit(train_one, item) for item in groups.items()
        ]
    with Pool() as pool:
        pool.map(lambda g: g, (g for g in groups))
    worker = Process(target=train_one, args=(("a", []),))
    return futures, worker
