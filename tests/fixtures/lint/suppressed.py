"""Inline suppressions: each violation line documents its reason."""

import time

_CACHE = {}


def pinned_lookup(process):
    key = id(process)  # repro-lint: disable=R1 entry pins the process, verified by 'is'
    entry = _CACHE.get(key)
    if entry is None or entry[0] is not process:
        entry = (process, compute(process))
        _CACHE[key] = entry
    return entry[1]


def wall_and_address(process):
    started = time.time()  # repro-lint: disable=R3,R1 demo of multi-rule suppression
    return started, compute(process)


def compute(process):
    return process
