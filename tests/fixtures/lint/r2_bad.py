"""R2 violations: stdlib random and legacy numpy.random globals."""

import random
from random import shuffle

import numpy as np


def jitter(values):
    random.shuffle(values)
    return [v + np.random.uniform(-1.0, 1.0) for v in values]


def reseed(seed):
    np.random.seed(seed)
    shuffle([1, 2, 3])
