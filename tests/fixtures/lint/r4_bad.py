"""R4 violations: iteration over bare set expressions."""


def emit(names, extra):
    for name in set(names):
        print(name)
    rows = [n.upper() for n in {x.strip() for x in names}]
    joined = ",".join(frozenset(extra))
    return rows, list(set(names)), joined
