"""R6 violations: exact float equality."""


def converged(previous, current):
    if current - previous == 0.0:
        return True
    return current == previous / 2


def is_unit(x):
    return float(x) != 1.0
