"""Numpy-heavy violations of R1 and R4, fleet-engine shaped.

The exact temptations a vectorized wave engine invites: caching compiled
per-catalog arrays under ``id(catalog)`` (R1 — addresses recycle across
garbage-collected catalogs) and iterating bare sets built from array
results (R4 — set order varies across runs/processes, so wave order
would too).
"""

import numpy as np

_COMPILED = {}


def compiled_arrays(catalog):
    key = id(catalog)
    if key not in _COMPILED:
        _COMPILED[key] = np.cumsum(catalog.weights)
    return _COMPILED[key]


def wave_groups(action_ids):
    groups = []
    for aid in set(action_ids.tolist()):
        groups.append(np.flatnonzero(action_ids == aid))
    return groups


def machine_labels(machines, names):
    return [names[m] for m in {int(m) for m in machines}]
