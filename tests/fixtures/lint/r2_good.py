"""R2-clean: explicit generators only."""

import numpy as np


def jitter(values, rng: np.random.Generator):
    order = rng.permutation(len(values))
    return [values[i] + rng.uniform(-1.0, 1.0) for i in order]


def make_rng(seed):
    return np.random.default_rng(np.random.SeedSequence(seed))
