"""R3 allowlist: perf counters are fine in telemetry modules."""

import time


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
