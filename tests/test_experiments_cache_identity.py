"""Regression tests for the experiments memo caches' id-reuse guards.

PR 1 fixed an ``id()``-keyed cache in ``simplatform/platform.py``; the
same bug class was live in ``experiments/bundle.py`` and
``experiments/figures.py``: keys embedded ``id(scenario)`` without
holding the scenario, so a new scenario allocated at a recycled address
would silently receive a dead scenario's results.  Both caches now pin
the scenario in the entry and verify identity with ``is``.  These tests
poison the caches with same-key/different-object entries — exactly what
address reuse produces — and assert the stale value is never returned.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.experiments import bundle as bundle_module
from repro.experiments import figures as figures_module
from repro.experiments.bundle import FractionBundle, train_fraction
from repro.experiments.scenario import build_scenario
from repro.learning.qlearning import QLearningConfig
from repro.tracegen.workload import small_config

FRACTION = 0.5


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(small_config(seed=19), top_k=3)


@pytest.fixture(scope="module")
def config():
    return PipelineConfig(
        top_k_types=3,
        qlearning=QLearningConfig(max_sweeps=40, episodes_per_sweep=8),
    )


def test_object_ids_are_recycled():
    """The hazard itself: CPython reuses addresses of dead objects."""
    ids = {id(object()) for _ in range(100)}
    assert len(ids) < 100


class TestBundleCache:
    def test_pinned_entry_is_returned_for_the_same_scenario(
        self, scenario, config, monkeypatch
    ):
        sentinel = object()
        key = (id(scenario), FRACTION, config)
        monkeypatch.setitem(
            bundle_module._CACHE, key, (scenario, sentinel)
        )
        assert train_fraction(scenario, FRACTION, config=config) is sentinel

    def test_stale_id_entry_is_not_returned(
        self, scenario, config, monkeypatch
    ):
        # Simulate address reuse: the cached entry carries this
        # scenario's id but pins a *different* (dead) scenario.
        sentinel = object()
        key = (id(scenario), FRACTION, config)
        monkeypatch.setitem(
            bundle_module._CACHE, key, (object(), sentinel)
        )
        result = train_fraction(scenario, FRACTION, config=config)
        assert result is not sentinel
        assert isinstance(result, FractionBundle)
        # The fresh result re-pins the live scenario under the key.
        pinned, cached = bundle_module._CACHE[key]
        assert pinned is scenario
        assert cached is result

    def test_use_cache_false_bypasses_poisoned_entry(
        self, scenario, config, monkeypatch
    ):
        sentinel = object()
        key = (id(scenario), FRACTION, config)
        monkeypatch.setitem(
            bundle_module._CACHE, key, (scenario, sentinel)
        )
        result = train_fraction(
            scenario, FRACTION, config=config, use_cache=False
        )
        assert result is not sentinel
        assert isinstance(result, FractionBundle)


class TestTreeComparisonCache:
    def test_pinned_entry_is_returned_for_the_same_scenario(
        self, scenario, config, monkeypatch
    ):
        sentinel = object()
        key = (id(scenario), FRACTION, 60, config)
        monkeypatch.setitem(
            figures_module._TREE_COMPARISON_CACHE,
            key,
            (scenario, sentinel),
        )
        result = figures_module._tree_comparison(
            scenario, FRACTION, standard_cap=60, config=config
        )
        assert result is sentinel

    def test_stale_id_entry_is_not_returned(
        self, scenario, config, monkeypatch
    ):
        sentinel = object()
        key = (id(scenario), FRACTION, 60, config)
        monkeypatch.setitem(
            figures_module._TREE_COMPARISON_CACHE,
            key,
            (object(), sentinel),
        )
        result = figures_module._tree_comparison(
            scenario, FRACTION, standard_cap=60, config=config
        )
        assert result is not sentinel
        assert isinstance(result, figures_module.TreeComparisonResult)
        pinned, cached = figures_module._TREE_COMPARISON_CACHE[key]
        assert pinned is scenario
        assert cached is result
