"""Detection-latency races and same-instant log ordering.

Two classes of edge case pinned here:

* **Same-instant entries.**  With zero detection and decision delays a
  symptom, the action answering it and the success report land on one
  ``(time, machine)`` pair.  :class:`~repro.recoverylog.entry.LogEntry`
  originally derived its ordering from ``dataclass(order=True)``, whose
  field-tuple comparison reached the ``kind`` enum on such ties and
  raised ``TypeError`` (enum members define no ``<``).  The explicit
  causal total order — symptom < action < success — fixed that; the
  regression tests here keep it fixed, on both backends.

* **Detection races.**  Symptoms that fire around process boundaries —
  re-emissions and secondary symptoms scheduled before a cure but
  firing after it — must never start a phantom recovery, and a fault
  that persists through a long detection latency must still resolve
  into one well-formed process.
"""

from __future__ import annotations

import pytest

from repro.actions import default_catalog
from repro.cluster.cluster import ClusterConfig, ClusterSimulator
from repro.cluster.detector import FaultDetector
from repro.cluster.faults import FaultCatalog, FaultType
from repro.cluster.fleet import FleetEngine
from repro.policies import AlwaysStrongestPolicy, UserDefinedPolicy
from repro.recoverylog.entry import EntryKind, LogEntry
from repro.recoverylog.log import RecoveryLog
from repro.util.rng import RngStreams

CATALOG = default_catalog()
DAY = 86_400.0


def simple_faults(secondaries=("warn:Side", "warn:Other")):
    return FaultCatalog(
        [
            FaultType(
                name="transient",
                primary_symptom="error:Transient",
                secondary_symptoms=secondaries,
                secondary_probability=0.9,
                cure_probabilities={"TRYNOP": 0.5, "REBOOT": 0.9},
                weight=3.0,
            ),
            FaultType(
                name="hard",
                primary_symptom="error:Hard",
                cure_probabilities={"REIMAGE": 0.9},
            ),
        ]
    )


def make_config(**overrides):
    params = dict(
        machine_count=6,
        duration=25 * DAY,
        mean_time_between_failures=2 * DAY,
        noise_probability=0.25,
        symptom_reemission_probability=1.0,
    )
    params.update(overrides)
    return ClusterConfig(**params)


def run_event(seed=5, **overrides):
    # The machine discipline, so runs are comparable to the fleet's.
    simulator = ClusterSimulator(
        make_config(rng_discipline="machine", **overrides),
        simple_faults(),
        UserDefinedPolicy(CATALOG),
        CATALOG,
        RngStreams(seed),
    )
    return simulator, simulator.run()


def run_fleet(seed=5, **overrides):
    engine = FleetEngine(
        make_config(backend="fleet", **overrides),
        simple_faults(),
        UserDefinedPolicy(CATALOG),
        CATALOG,
        RngStreams(seed),
    )
    return engine, engine.run().to_log()


# ---------------------------------------------------------------------------
# Same-instant ordering (the fixed TypeError regression)
# ---------------------------------------------------------------------------
class TestSameInstantOrdering:
    def entries(self):
        return [
            LogEntry.success(100.0, "m-1"),
            LogEntry.action(100.0, "m-1", "REBOOT"),
            LogEntry.symptom(100.0, "m-1", "error:X"),
        ]

    def test_mixed_kinds_at_one_instant_sort_without_typeerror(self):
        """Regression: dataclass field ordering compared EntryKind
        members on (time, machine) ties and raised TypeError."""
        ordered = sorted(self.entries())
        assert [e.kind for e in ordered] == [
            EntryKind.SYMPTOM,
            EntryKind.ACTION,
            EntryKind.SUCCESS,
        ]

    def test_causal_rank_beats_description_order(self):
        """The success report sorts after the action even though
        'Success' < alphabetically-later action names would say
        otherwise under plain field comparison."""
        action = LogEntry.action(7.0, "m", "ZAP")
        success = LogEntry.success(7.0, "m")
        assert action < success
        assert not (success < action)

    def test_comparisons_reject_foreign_types(self):
        entry = LogEntry.symptom(1.0, "m", "error:X")
        assert entry.__lt__(3) is NotImplemented
        with pytest.raises(TypeError):
            entry < 3  # noqa: B015 — the raise is the assertion

    def test_log_append_keeps_tied_entries_causal(self):
        log = RecoveryLog()
        for entry in self.entries():
            log.append(entry)
        assert [e.kind for e in log.entries] == [
            EntryKind.SYMPTOM,
            EntryKind.ACTION,
            EntryKind.SUCCESS,
        ]

    @pytest.mark.parametrize("runner", [run_event, run_fleet])
    def test_zero_delay_simulation_produces_sortable_log(self, runner):
        """Whole-run regression: zero delays collapse decision instants
        onto symptom times; the run must neither crash nor interleave
        kinds acausally at shared instants."""
        _owner, log = runner(
            seed=3, detection_delay_mean=0.0, decision_delay_mean=0.0
        )
        processes = log.to_processes()
        assert processes  # segmentation validates structure per process
        by_instant = {}
        for entry in log.entries:
            by_instant.setdefault((entry.time, entry.machine), []).append(
                entry
            )
        ranks = {
            EntryKind.SYMPTOM: 0,
            EntryKind.ACTION: 1,
            EntryKind.SUCCESS: 2,
        }
        for group in by_instant.values():
            assert [ranks[e.kind] for e in group] == sorted(
                ranks[e.kind] for e in group
            )


# ---------------------------------------------------------------------------
# Detector unit races
# ---------------------------------------------------------------------------
class TestDetectorRaces:
    def test_symptoms_during_recovery_do_not_redetect(self):
        seen = []
        detector = FaultDetector(lambda m, s: seen.append((m, s)))
        detector.observe(LogEntry.symptom(1.0, "m", "error:X"))
        detector.observe(LogEntry.symptom(2.0, "m", "warn:side"))
        detector.observe(LogEntry.symptom(3.0, "m", "error:X"))
        assert seen == [("m", "error:X")]
        assert detector.detections == 1

    def test_success_reopens_detection(self):
        seen = []
        detector = FaultDetector(lambda m, s: seen.append((m, s)))
        detector.observe(LogEntry.symptom(1.0, "m", "error:X"))
        detector.observe(LogEntry.success(5.0, "m"))
        detector.observe(LogEntry.symptom(6.0, "m", "warn:straggler"))
        assert seen == [("m", "error:X"), ("m", "warn:straggler")]

    def test_active_symptom_tracks_initial_symptom_only(self):
        detector = FaultDetector(lambda m, s: None)
        detector.observe(LogEntry.symptom(1.0, "m", "error:X"))
        detector.observe(LogEntry.symptom(2.0, "m", "warn:side"))
        assert detector.active_symptom("m") == "error:X"
        detector.observe(LogEntry.success(3.0, "m"))
        assert detector.active_symptom("m") is None


# ---------------------------------------------------------------------------
# Whole-simulation races
# ---------------------------------------------------------------------------
class TestSimulationRaces:
    def test_stragglers_never_start_phantom_recoveries(self):
        """With certain re-emission and wide symptom windows, symptom
        events routinely outlive the cure that scheduled them.  None may
        trigger a new detection: detections == completed processes."""
        simulator, log = run_event(
            seed=9, secondary_symptom_window=5_000.0
        )
        processes = log.to_processes()
        assert simulator.detector.detections == len(processes)

    def test_symptom_cured_before_scheduled_emission_is_dropped(self):
        """A symptom scheduled before the cure but firing after it (on a
        healthy machine) is suppressed — every logged symptom falls
        inside a process, and both backends drop the same set."""
        _sim, event_log = run_event(seed=13, secondary_symptom_window=5_000.0)
        _eng, fleet_log = run_fleet(seed=13, secondary_symptom_window=5_000.0)
        assert event_log == fleet_log
        spans = {}
        for process in event_log.to_processes():
            spans.setdefault(process.machine, []).append(
                (process.entries[0].time, process.entries[-1].time)
            )
        for entry in event_log.entries:
            assert any(
                start <= entry.time <= end
                for start, end in spans[entry.machine]
            )

    @pytest.mark.parametrize("delay", [10_000.0, 100_000.0])
    def test_long_detection_latency_still_yields_one_process(self, delay):
        """The fault persists untouched through an arbitrarily long
        detection latency (nothing can cure a machine whose recovery has
        not begun); each onset still resolves into exactly one process,
        identically on both backends."""
        simulator, event_log = run_event(
            seed=7, detection_delay_mean=delay, machine_count=4
        )
        _engine, fleet_log = run_fleet(
            seed=7, detection_delay_mean=delay, machine_count=4
        )
        assert event_log == fleet_log
        processes = event_log.to_processes()
        assert simulator.detector.detections == len(processes)
        total_failures = sum(
            m.failure_count for m in simulator.machines.values()
        )
        assert total_failures == len(processes)

    def test_noise_primary_fires_after_main_detection(self):
        """The overlapping fault's primary symptom lands inside the
        ongoing process (strictly after the main primary), so the
        induced error type is always the main fault's."""
        _sim, log = run_event(seed=17, noise_probability=0.6)
        for process in log.to_processes():
            assert process.entries[0].is_symptom
            first = process.entries[0]
            later_symptoms = [
                e
                for e in process.entries[1:]
                if e.is_symptom and e.description.startswith("error:")
            ]
            for entry in later_symptoms:
                assert entry.time > first.time
