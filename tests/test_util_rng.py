"""Tests for repro.util.rng."""

import numpy as np

from repro.util.rng import RngStreams, make_rng


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(make_rng(1).random(5), make_rng(2).random(5))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestRngStreams:
    def test_same_name_same_generator_object(self):
        streams = RngStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_named_streams_reproducible_across_instances(self):
        a = RngStreams(7).get("faults").random(4)
        b = RngStreams(7).get("faults").random(4)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        streams = RngStreams(7)
        a = streams.get("a").random(4)
        b = streams.get("b").random(4)
        assert not np.allclose(a, b)

    def test_stream_independent_of_creation_order(self):
        first = RngStreams(7)
        first.get("x")
        value_after_x = first.get("y").random()
        second = RngStreams(7)
        value_direct = second.get("y").random()
        assert value_after_x == value_direct

    def test_fresh_resets_stream_state(self):
        streams = RngStreams(7)
        initial = streams.get("s").random()
        streams.get("s").random()  # advance
        again = streams.fresh("s").random()
        assert again == initial

    def test_seed_property(self):
        assert RngStreams(99).seed == 99
        assert RngStreams().seed is None
