"""Cross-validation of the learners against dynamic programming.

The empirical belief MDP (value iteration) computes the exact optimum
for the platform's replay dynamics; a converged tabular Q-learner must
agree with it — the contraction argument the paper cites (Section 3.2)
made checkable.
"""

import pytest

from helpers import ladder_processes
from repro.actions import default_catalog
from repro.learning.qlearning import QLearningConfig, QLearningTrainer
from repro.learning.selection_tree import (
    SelectionTreeConfig,
    SelectionTreeExtractor,
)
from repro.mdp.empirical import EmpiricalRecoveryMDP
from repro.mdp.state import RecoveryState
from repro.simplatform.platform import CostMode, SimulationPlatform

CATALOG = default_catalog()


def fixtures():
    hard = ladder_processes(
        "error:Hard",
        [
            (["TRYNOP", "REBOOT", "REBOOT", "REIMAGE"], 24),
            (["TRYNOP", "REBOOT"], 4),
            (["TRYNOP"], 2),
        ],
        realistic_durations=True,
    )
    soft = ladder_processes(
        "error:Soft",
        [(["TRYNOP"], 18), (["TRYNOP", "REBOOT"], 12)],
        realistic_durations=True,
    )
    return {"error:Hard": hard, "error:Soft": soft}


class TestAgreementWithValueIteration:
    @pytest.mark.parametrize("error_type", ["error:Hard", "error:Soft"])
    def test_q_learning_matches_optimal_root_action(self, error_type):
        groups = fixtures()
        processes = groups[error_type]
        # AVERAGES_ONLY makes the platform's dynamics exactly the belief
        # MDP's (actual-cost matching is a per-position refinement the
        # MDP abstraction cannot see).
        platform = SimulationPlatform(
            processes, CATALOG, cost_mode=CostMode.AVERAGES_ONLY
        )
        trainer = QLearningTrainer(
            platform,
            QLearningConfig(max_sweeps=300, seed=5),
        )
        result = trainer.train_type(error_type, processes)

        model = EmpiricalRecoveryMDP.estimate(
            error_type, processes, CATALOG
        )
        from repro.mdp.value_iteration import (
            q_values_from_values,
            value_iteration,
        )

        vi = value_iteration(model.mdp)
        optimal_value = vi.values[model.initial_state]
        model_q = q_values_from_values(model.mdp, vi.values)

        s0 = RecoveryState.initial(error_type)
        greedy_action, greedy_value = result.qtable.greedy_action(s0)
        # The learned root action is near-optimal per the exact model:
        # when two first actions are within a few percent (the Hard
        # fixture's TRYNOP-vs-REIMAGE near-tie), either is acceptable.
        chosen_model_value = model_q[(model.initial_state, greedy_action)]
        assert chosen_model_value <= optimal_value * 1.08
        # The learned Q value itself approximates V* (both exclude the
        # initial detection delay).
        assert greedy_value == pytest.approx(
            chosen_model_value, rel=0.15
        )

    def test_selection_tree_matches_optimal_first_action(self):
        groups = fixtures()
        for error_type, processes in groups.items():
            platform = SimulationPlatform(
                processes, CATALOG, cost_mode=CostMode.AVERAGES_ONLY
            )
            trainer = QLearningTrainer(
                platform, QLearningConfig(max_sweeps=200, seed=6)
            )
            extractor = SelectionTreeExtractor(
                platform,
                SelectionTreeConfig(min_sweeps=40, check_interval=20),
            )
            outcome = extractor.train_type(trainer, error_type, processes)
            model = EmpiricalRecoveryMDP.estimate(
                error_type, processes, CATALOG
            )
            from repro.mdp.value_iteration import (
                q_values_from_values,
                value_iteration,
            )

            vi = value_iteration(model.mdp)
            model_q = q_values_from_values(model.mdp, vi.values)
            s0 = RecoveryState.initial(error_type)
            chosen = outcome.rules[s0][0]
            # Near-optimal first action per the exact model.
            assert (
                model_q[(model.initial_state, chosen)]
                <= vi.values[model.initial_state] * 1.08
            )


class TestDeterminism:
    def test_same_seed_same_rules(self):
        groups = fixtures()
        processes = groups["error:Hard"]
        platform = SimulationPlatform(processes, CATALOG)

        def train():
            trainer = QLearningTrainer(
                platform, QLearningConfig(max_sweeps=60, seed=9)
            )
            extractor = SelectionTreeExtractor(
                platform,
                SelectionTreeConfig(min_sweeps=20, check_interval=10),
            )
            outcome = extractor.train_type(
                trainer, "error:Hard", processes
            )
            return {
                state.tried: rule[0]
                for state, rule in outcome.rules.items()
            }

        assert train() == train()
